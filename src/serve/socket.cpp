#include "serve/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/check.hpp"
#include "common/log.hpp"
#include "telemetry/telemetry.hpp"

namespace arcs::serve {

namespace {

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ARCS_CHECK_MSG(path.size() < sizeof(addr.sun_path),
                 "socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

SocketServer::SocketServer(TuningServer& server, std::string path,
                           SocketServerOptions options)
    : server_(server),
      path_(std::move(path)),
      options_(options),
      queue_(std::max<std::size_t>(1, options.queue_capacity)) {
  const sockaddr_un addr = make_address(path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ARCS_CHECK_MSG(listen_fd_ >= 0, "cannot create unix socket");
  ::unlink(path_.c_str());  // the daemon owns its path; drop stale binds
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ARCS_CHECK_MSG(false, "cannot bind unix socket at " + path_);
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ARCS_CHECK_MSG(false, "cannot listen on unix socket at " + path_);
  }
  const std::size_t workers = std::max<std::size_t>(1, options_.workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
  acceptor_ = std::thread([this] { accept_loop(); });
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::accept_loop() {
  for (;;) {
    int conn_fd = -1;
    {
      const analysis::BlockingGuard guard("serve/accept");
      conn_fd = ::accept(listen_fd_, nullptr, nullptr);
    }
    if (conn_fd < 0) {
      if (!stopping_.load(std::memory_order_acquire) && errno == EINTR)
        continue;
      return;  // listening socket shut down
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = conn_fd;
    const std::lock_guard<analysis::Mutex> lock(conns_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(conn_fd);
      return;
    }
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { reader_loop(conn); });
  }
}

void SocketServer::reader_loop(std::shared_ptr<Connection> conn) {
  for (;;) {
    const auto frame = read_frame(conn->fd);
    if (!frame) return;  // peer closed (or stop() shut the socket down)
    Request request;
    try {
      std::string parse_error;
      const common::Json json = common::Json::parse(*frame, &parse_error);
      ARCS_CHECK_MSG(!json.is_null(), "bad JSON frame: " + parse_error);
      request = request_from_json(json);
    } catch (const common::ContractError& e) {
      Response response;
      response.status = Status::Error;
      response.error = e.what();
      send_response(*conn, response);
      continue;
    }
    // The BoundedMpmcQueue is the admission valve: a full queue means
    // the worker pool is saturated, so shed the request *now* instead
    // of queueing unbounded work.
    if (!queue_.try_push(Work{conn, request})) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      Response response;
      response.status = Status::Overloaded;
      send_response(*conn, response);
    }
  }
}

void SocketServer::worker_loop(std::size_t index) {
  telemetry::Tracer::instance().name_host_thread(
      "serve worker " + std::to_string(index));
  for (;;) {
    auto work = queue_.pop();
    if (!work) return;  // queue closed and drained
    const Response response = server_.handle(work->request);
    send_response(*work->conn, response);
  }
}

void SocketServer::send_response(Connection& conn,
                                 const Response& response) {
  const std::string payload = to_json(response).dump(0);
  const std::lock_guard<analysis::Mutex> lock(conn.write_mu);
  if (!write_frame(conn.fd, payload) &&
      !stopping_.load(std::memory_order_acquire))
    common::log_warn() << "serve: dropped reply on a broken connection";
}

void SocketServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  {
    const std::lock_guard<analysis::Mutex> lock(conns_mu_);
    for (const auto& conn : conns_)
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& reader : readers_)
    if (reader.joinable()) reader.join();
  queue_.close();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
  {
    const std::lock_guard<analysis::Mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (conn->fd >= 0) ::close(conn->fd);
      conn->fd = -1;
    }
    conns_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(path_.c_str());
}

SocketClient::SocketClient(const std::string& path) {
  const sockaddr_un addr = make_address(path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ARCS_CHECK_MSG(fd_ >= 0, "cannot create unix socket");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    ARCS_CHECK_MSG(false, "cannot connect to tuning service at " + path);
  }
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

Response SocketClient::call(const Request& request) {
  Response response;
  const std::lock_guard<analysis::Mutex> lock(mu_);
  if (fd_ < 0 || !write_frame(fd_, to_json(request).dump(0))) {
    transport_failed_ = true;
    response.status = Status::Error;
    response.error = "tuning service connection is down";
    return response;
  }
  const auto frame = read_frame(fd_);
  if (!frame) {
    transport_failed_ = true;
    response.status = Status::Error;
    response.error = "tuning service closed the connection";
    return response;
  }
  try {
    std::string parse_error;
    const common::Json json = common::Json::parse(*frame, &parse_error);
    ARCS_CHECK_MSG(!json.is_null(), "bad JSON frame: " + parse_error);
    return response_from_json(json);
  } catch (const common::ContractError& e) {
    transport_failed_ = true;
    response.status = Status::Error;
    response.error = e.what();
    return response;
  }
}

}  // namespace arcs::serve
