#include "serve/socket.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include "common/check.hpp"
#include "common/log.hpp"
#include "telemetry/telemetry.hpp"

namespace arcs::serve {

namespace {

constexpr std::uint64_t kListenId = 0;
constexpr std::uint64_t kWakeId = 1;
constexpr std::size_t kReadChunk = 16 * 1024;

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ARCS_CHECK_MSG(path.size() < sizeof(addr.sun_path),
                 "socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ARCS_CHECK_MSG(flags >= 0, "fcntl(F_GETFL) failed");
  ARCS_CHECK_MSG(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                 "fcntl(F_SETFL, O_NONBLOCK) failed");
}

/// Ops that may block the handling thread (cv wait, file I/O) or do
/// bulk (de)serialization go to the worker pool; everything else runs
/// inline on the loop thread.
bool needs_worker(const Request& request) {
  if (request.op == Op::Save) return true;
  if (request.op == Op::Snapshot || request.op == Op::WarmStart) return true;
  // Both serialize a full document (flight-recorder trace, fleet status)
  // — too much work for the loop thread.
  if (request.op == Op::Dump || request.op == Op::FleetStatus) return true;
  return request.op == Op::Get && request.wait_ms > 0;
}

}  // namespace

SocketServer::SocketServer(RequestHandler& handler, std::string path,
                           SocketServerOptions options)
    : server_(handler),
      path_(std::move(path)),
      options_(options),
      queue_(std::max<std::size_t>(1, options.queue_capacity)) {
  const sockaddr_un addr = make_address(path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ARCS_CHECK_MSG(listen_fd_ >= 0, "cannot create unix socket");
  ::unlink(path_.c_str());  // the daemon owns its path; drop stale binds
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ARCS_CHECK_MSG(false, "cannot bind unix socket at " + path_);
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ARCS_CHECK_MSG(false, "cannot listen on unix socket at " + path_);
  }
  set_nonblocking(listen_fd_);
  epoll_fd_ = ::epoll_create1(0);
  ARCS_CHECK_MSG(epoll_fd_ >= 0, "cannot create epoll instance");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  ARCS_CHECK_MSG(wake_fd_ >= 0, "cannot create eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  ARCS_CHECK_MSG(
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0,
      "cannot register listen socket with epoll");
  ev.data.u64 = kWakeId;
  ARCS_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
                 "cannot register wake eventfd with epoll");
  const std::size_t workers = std::max<std::size_t>(1, options_.workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
  loop_thread_ = std::thread([this] { loop(); });
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::wake() {
  const std::uint64_t one = 1;
  for (;;) {
    const ssize_t rc = ::write(wake_fd_, &one, sizeof one);
    if (rc >= 0 || errno != EINTR) return;  // EAGAIN = already pending
  }
}

void SocketServer::loop() {
  telemetry::Tracer::instance().name_host_thread("serve loop");
  // A finite tick keeps the idle sweep running and bounds how stale a
  // missed wake-up could ever get.
  const int timeout_ms = options_.idle_timeout_s > 0 ? 50 : 500;
  std::array<epoll_event, 64> events{};
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = 0;
    {
      const analysis::BlockingGuard guard("serve/epoll_wait");
      n = ::epoll_wait(epoll_fd_, events.data(),
                       static_cast<int>(events.size()), timeout_ms);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[static_cast<std::size_t>(i)].data.u64;
      const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
      if (id == kWakeId) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof drained) > 0) {
        }
        drain_completions();
        continue;
      }
      if (id == kListenId) {
        accept_ready();
        continue;
      }
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      Connection& conn = *it->second;
      if ((mask & (EPOLLERR | EPOLLHUP)) != 0) {
        close_connection(id);
        continue;
      }
      if ((mask & EPOLLOUT) != 0) write_ready(conn);
      if (conns_.find(id) == conns_.end()) continue;  // write_ready closed
      if ((mask & EPOLLIN) != 0) read_ready(conn);
    }
    drain_completions();
    if (options_.idle_timeout_s > 0) sweep_idle();
  }
  // Loop exit: close every connection so blocked clients see EOF.
  while (!conns_.empty()) close_connection(conns_.begin()->first);
}

void SocketServer::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: accepted everything pending
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_activity = Clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(conn->id, std::move(conn));
    connections_now_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SocketServer::read_ready(Connection& conn) {
  const std::uint64_t id = conn.id;  // handlers below may destroy conn
  char buf[kReadChunk];
  for (;;) {
    if (!conn.reading) break;  // backpressure kicked in mid-burst
    const ssize_t rc = ::read(conn.fd, buf, sizeof buf);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(id);
      return;
    }
    if (rc == 0) {  // peer closed; anything half-framed dies with it
      close_connection(id);
      return;
    }
    conn.last_activity = Clock::now();
    conn.decoder.feed(buf, static_cast<std::size_t>(rc));
    std::string frame;
    for (;;) {
      const FrameDecoder::Result result = conn.decoder.next(frame);
      if (result == FrameDecoder::Result::NeedMore) break;
      if (result == FrameDecoder::Result::Corrupt) {
        // A length-prefixed stream cannot resync after a bad prefix:
        // stop reading, flush what we owe, then drop the connection.
        corrupt_conns_.fetch_add(1, std::memory_order_relaxed);
        conn.corrupt = true;
        conn.reading = false;
        update_events(conn);
        if (conns_.find(id) != conns_.end() &&
            conn.write_pos >= conn.write_buf.size())
          close_connection(id);
        return;
      }
      handle_frame(conn, frame);
      if (conns_.find(id) == conns_.end()) return;  // closed under us
    }
  }
}

void SocketServer::handle_frame(Connection& conn, const std::string& frame) {
  Request request;
  try {
    std::string parse_error;
    const common::Json json = common::Json::parse(frame, &parse_error);
    ARCS_CHECK_MSG(!json.is_null(), "bad JSON frame: " + parse_error);
    request = request_from_json(json);
  } catch (const common::ContractError& e) {
    // Garbage *inside* a well-formed frame is the peer's bug, not a
    // framing desync: answer Error and keep serving the connection.
    Response response;
    response.status = Status::Error;
    response.error = e.what();
    enqueue_response(conn, response);
    return;
  }
  if (!needs_worker(request)) {
    enqueue_response(conn, server_.handle(request));
    return;
  }
  // The BoundedMpmcQueue is the admission valve: a full queue means the
  // worker pool is saturated, so shed the request *now* instead of
  // queueing unbounded work.
  if (!queue_.try_push(Work{conn.id, request})) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    Response response;
    response.status = Status::Overloaded;
    enqueue_response(conn, response);
    return;
  }
  ++conn.inflight;
}

void SocketServer::worker_loop(std::size_t index) {
  telemetry::Tracer::instance().name_host_thread(
      "serve worker " + std::to_string(index));
  for (;;) {
    auto work = queue_.pop();
    if (!work) return;  // queue closed and drained
    const Response response = server_.handle(work->request);
    {
      const std::lock_guard<analysis::Mutex> lock(completions_mu_);
      completions_.push_back(
          Completion{work->conn_id, to_json(response).dump(0)});
    }
    wake();
  }
}

void SocketServer::drain_completions() {
  std::vector<Completion> batch;
  {
    const std::lock_guard<analysis::Mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (const Completion& completion : batch) {
    const auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;  // connection died while handling
    Connection& conn = *it->second;
    if (conn.inflight > 0) --conn.inflight;
    enqueue_payload(conn, completion.payload);
  }
}

void SocketServer::enqueue_response(Connection& conn,
                                    const Response& response) {
  enqueue_payload(conn, to_json(response).dump(0));
}

void SocketServer::enqueue_payload(Connection& conn,
                                   std::string_view payload) {
  const std::uint64_t id = conn.id;  // flush() may destroy conn
  conn.write_buf.append(encode_frame(payload));
  flush(conn);
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;  // flush closed it
  const std::size_t pending = conn.write_buf.size() - conn.write_pos;
  if (conn.reading && pending > options_.max_pending_write_bytes) {
    // The client is not draining its socket. Stop reading from it so its
    // own sends eventually block — backpressure lands on the slow party,
    // and this connection's buffer stops growing from new requests.
    // (Worker completions still land here; they are bounded by the
    // dispatch queue.)
    conn.reading = false;
    suspended_reads_.fetch_add(1, std::memory_order_relaxed);
    update_events(conn);
  }
}

void SocketServer::flush(Connection& conn) {
  while (conn.write_pos < conn.write_buf.size()) {
    const ssize_t rc =
        ::send(conn.fd, conn.write_buf.data() + conn.write_pos,
               conn.write_buf.size() - conn.write_pos, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn.want_write) {
          conn.want_write = true;
          update_events(conn);
        }
        return;
      }
      if (!stopping_.load(std::memory_order_acquire))
        common::log_warn() << "serve: dropped reply on a broken connection";
      close_connection(conn.id);
      return;
    }
    conn.write_pos += static_cast<std::size_t>(rc);
  }
  // Fully drained: batched frames went out in as few send()s as the
  // kernel allowed. Reset the buffer and rearm reads if backpressure had
  // paused them.
  conn.write_buf.clear();
  conn.write_pos = 0;
  bool events_changed = false;
  if (conn.want_write) {
    conn.want_write = false;
    events_changed = true;
  }
  if (conn.corrupt) {
    close_connection(conn.id);
    return;
  }
  if (!conn.reading) {
    conn.reading = true;
    events_changed = true;
  }
  if (events_changed) update_events(conn);
}

void SocketServer::write_ready(Connection& conn) {
  const std::uint64_t id = conn.id;  // flush() may destroy conn
  flush(conn);
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  // Partial drain below half the cap also rearms reads: the client is
  // consuming again.
  if (!conn.reading && !conn.corrupt &&
      conn.write_buf.size() - conn.write_pos <=
          options_.max_pending_write_bytes / 2) {
    conn.reading = true;
    update_events(conn);
  }
}

void SocketServer::update_events(Connection& conn) {
  epoll_event ev{};
  ev.events = (conn.reading ? EPOLLIN : 0u) |
              (conn.want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) != 0)
    close_connection(conn.id);
}

void SocketServer::close_connection(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  conns_.erase(it);
  connections_now_.fetch_sub(1, std::memory_order_relaxed);
}

void SocketServer::sweep_idle() {
  const auto now = Clock::now();
  const auto limit = std::chrono::duration<double>(options_.idle_timeout_s);
  std::vector<std::uint64_t> expired;
  for (const auto& [id, conn] : conns_) {
    if (conn->inflight > 0) continue;  // a worker still owes it a reply
    if (conn->write_pos < conn->write_buf.size()) continue;
    if (now - conn->last_activity >= limit) expired.push_back(id);
  }
  for (const std::uint64_t id : expired) {
    timed_out_.fetch_add(1, std::memory_order_relaxed);
    close_connection(id);
  }
}

void SocketServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  queue_.close();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  ::unlink(path_.c_str());
}

SocketClient::SocketClient(const std::string& path) : path_(path) {
  const sockaddr_un addr = make_address(path_);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ARCS_CHECK_MSG(fd_ >= 0, "cannot create unix socket");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    // Keep the errno: a missing path means "no daemon ever bound here",
    // a refusal means "stale socket file, daemon gone" — callers print
    // different advice and exit with different codes.
    std::string why = std::strerror(err);
    if (err == ENOENT)
      why = "no such socket — is the daemon running with --socket " +
            path_ + "?";
    else if (err == ECONNREFUSED)
      why = "connection refused — stale socket file with no daemon "
            "behind it?";
    throw ConnectError(
        "cannot connect to tuning service at " + path_ + ": " + why, err);
  }
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

bool SocketClient::reopen() {
  const std::lock_guard<analysis::Mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const sockaddr_un addr = make_address(path_);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  transport_failed_ = false;
  return true;
}

Response SocketClient::call(const Request& request) {
  Response response;
  const std::lock_guard<analysis::Mutex> lock(mu_);
  if (fd_ < 0 || !write_frame(fd_, to_json(request).dump(0))) {
    transport_failed_ = true;
    response.status = Status::Error;
    response.error = "tuning service connection is down";
    return response;
  }
  const auto frame = read_frame(fd_);
  if (!frame) {
    transport_failed_ = true;
    response.status = Status::Error;
    response.error = "tuning service closed the connection";
    return response;
  }
  try {
    std::string parse_error;
    const common::Json json = common::Json::parse(*frame, &parse_error);
    ARCS_CHECK_MSG(!json.is_null(), "bad JSON frame: " + parse_error);
    return response_from_json(json);
  } catch (const common::ContractError& e) {
    transport_failed_ = true;
    response.status = Status::Error;
    response.error = e.what();
    return response;
  }
}

}  // namespace arcs::serve
