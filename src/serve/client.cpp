#include "serve/client.hpp"

#include "telemetry/telemetry.hpp"

namespace arcs::serve {

RemoteDecision Client::decide(const HistoryKey& key, double timeout_ms) {
  const telemetry::ScopedSpan span(telemetry::Category::Client,
                                   "client/decide");
  Request request;
  request.op = Op::Get;
  request.key = key;
  request.wait_ms = timeout_ms;
  request.ctx = span.context();
  const Response response = call(request);
  RemoteDecision decision;
  switch (response.status) {
    case Status::Hit:
      decision.kind = RemoteDecision::Kind::Apply;
      decision.config = response.config;
      decision.predicted = response.predicted;
      break;
    case Status::Evaluate:
      decision.kind = RemoteDecision::Kind::Evaluate;
      decision.config = response.config;
      decision.ticket = response.ticket;
      break;
    case Status::Pending:
    case Status::Timeout:
      decision.kind = RemoteDecision::Kind::Pending;
      break;
    case Status::Ok:
    case Status::Overloaded:
    case Status::Error:
      decision.kind = RemoteDecision::Kind::Unavailable;
      break;
  }
  return decision;
}

void Client::report(const HistoryKey& key, std::uint64_t ticket,
                    double value) {
  const telemetry::ScopedSpan span(telemetry::Category::Client,
                                   "client/report", {}, 0, ticket);
  Request request;
  request.op = Op::Report;
  request.key = key;
  request.ticket = ticket;
  request.value = value;
  request.ctx = span.context();
  call(request);  // Ok either way: stale reports are dropped server-side
}

}  // namespace arcs::serve
