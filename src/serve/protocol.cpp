#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "analysis/sync.hpp"
#include "common/check.hpp"

namespace arcs::serve {

namespace {

const common::Json& require(const common::Json& json, const std::string& key) {
  const common::Json* member = json.find(key);
  ARCS_CHECK_MSG(member != nullptr, "serve message missing field: " + key);
  return *member;
}

std::string require_string(const common::Json& json, const std::string& key) {
  const common::Json& member = require(json, key);
  ARCS_CHECK_MSG(member.is_string(),
                 "serve message field is not a string: " + key);
  return member.as_string();
}

double require_number(const common::Json& json, const std::string& key) {
  const common::Json& member = require(json, key);
  ARCS_CHECK_MSG(member.is_number(),
                 "serve message field is not a number: " + key);
  return member.as_number();
}

/// Hashes travel as 16-hex-digit strings: a JSON number is a double, and
/// doubles cannot hold a full 64-bit hash exactly.
std::string hex_u64(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::uint64_t hex_u64_parse(const std::string& s) {
  ARCS_CHECK_MSG(!s.empty() && s.size() <= 16,
                 "serve message hash field is not a hex u64: " + s);
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9')
      v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else
      ARCS_CHECK_MSG(false, "serve message hash field is not a hex u64: " + s);
  }
  return v;
}

void check_protocol(const common::Json& json) {
  ARCS_CHECK_MSG(json.is_object(), "serve message is not a JSON object");
  const std::string proto = require_string(json, "proto");
  ARCS_CHECK_MSG(proto == kProtocol,
                 "protocol mismatch: got '" + proto + "', want '" +
                     std::string(kProtocol) + "'");
}

common::Json key_to_json(const HistoryKey& key) {
  common::Json j = common::Json::object();
  j.set("app", key.app);
  j.set("machine", key.machine);
  j.set("power_cap", key.power_cap);
  j.set("workload", key.workload);
  j.set("region", key.region);
  return j;
}

HistoryKey key_from_json(const common::Json& json) {
  HistoryKey key;
  key.app = require_string(json, "app");
  key.machine = require_string(json, "machine");
  key.power_cap = require_number(json, "power_cap");
  key.workload = require_string(json, "workload");
  key.region = require_string(json, "region");
  return key;
}

/// Full read/write helpers over a stream socket (EINTR-safe).
/// MSG_NOSIGNAL: a peer hanging up mid-write must surface as EPIPE (a
/// transport error the caller handles), never as a process-killing
/// SIGPIPE.
bool write_all(int fd, const unsigned char* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t rc = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc == 0) return false;
    done += static_cast<std::size_t>(rc);
  }
  return true;
}

bool read_all(int fd, unsigned char* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t rc = ::read(fd, data + done, n - done);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc == 0) return false;  // EOF mid-frame (or before it)
    done += static_cast<std::size_t>(rc);
  }
  return true;
}

}  // namespace

std::string_view to_string(Op op) {
  switch (op) {
    case Op::Ping:
      return "ping";
    case Op::Get:
      return "get";
    case Op::Report:
      return "report";
    case Op::Put:
      return "put";
    case Op::Metrics:
      return "metrics";
    case Op::Save:
      return "save";
    case Op::Shutdown:
      return "shutdown";
    case Op::Snapshot:
      return "snapshot";
    case Op::WarmStart:
      return "warm_start";
    case Op::Invalidate:
      return "invalidate";
    case Op::FleetStatus:
      return "fleet_status";
    case Op::Dump:
      return "dump";
  }
  return "unknown";
}

Op op_from_string(std::string_view s) {
  if (s == "ping") return Op::Ping;
  if (s == "get") return Op::Get;
  if (s == "report") return Op::Report;
  if (s == "put") return Op::Put;
  if (s == "metrics") return Op::Metrics;
  if (s == "save") return Op::Save;
  if (s == "shutdown") return Op::Shutdown;
  if (s == "snapshot") return Op::Snapshot;
  if (s == "warm_start") return Op::WarmStart;
  if (s == "invalidate") return Op::Invalidate;
  if (s == "fleet_status") return Op::FleetStatus;
  if (s == "dump") return Op::Dump;
  ARCS_CHECK_MSG(false, "unknown serve op: " + std::string(s));
  return Op::Ping;
}

std::string_view to_string(Status status) {
  switch (status) {
    case Status::Ok:
      return "ok";
    case Status::Hit:
      return "hit";
    case Status::Evaluate:
      return "evaluate";
    case Status::Pending:
      return "pending";
    case Status::Overloaded:
      return "overloaded";
    case Status::Timeout:
      return "timeout";
    case Status::Error:
      return "error";
  }
  return "unknown";
}

Status status_from_string(std::string_view s) {
  if (s == "ok") return Status::Ok;
  if (s == "hit") return Status::Hit;
  if (s == "evaluate") return Status::Evaluate;
  if (s == "pending") return Status::Pending;
  if (s == "overloaded") return Status::Overloaded;
  if (s == "timeout") return Status::Timeout;
  if (s == "error") return Status::Error;
  ARCS_CHECK_MSG(false, "unknown serve status: " + std::string(s));
  return Status::Error;
}

common::Json to_json(const Request& request) {
  common::Json j = common::Json::object();
  j.set("proto", std::string(kProtocol));
  j.set("op", std::string(to_string(request.op)));
  switch (request.op) {
    case Op::Get:
      j.set("key", key_to_json(request.key));
      j.set("wait_ms", request.wait_ms);
      if (request.read_only) j.set("read_only", true);
      break;
    case Op::Report:
      j.set("key", key_to_json(request.key));
      j.set("ticket", request.ticket);
      j.set("value", request.value);
      break;
    case Op::Put:
      j.set("key", key_to_json(request.key));
      j.set("config", request.config.to_string());
      j.set("value", request.value);
      j.set("evaluations", request.evaluations);
      break;
    case Op::Metrics:
      if (!request.format.empty()) j.set("format", request.format);
      break;
    case Op::Snapshot:
      j.set("hash_lo", hex_u64(request.hash_lo));
      j.set("hash_hi", hex_u64(request.hash_hi));
      break;
    case Op::WarmStart:
      j.set("payload", request.payload);
      break;
    case Op::Invalidate:
      j.set("key", key_to_json(request.key));
      break;
    case Op::Ping:
    case Op::Save:
    case Op::Shutdown:
    case Op::FleetStatus:
    case Op::Dump:
      break;
  }
  // Tracing context rides along only when the caller has one; peers that
  // predate it never see the field, peers that lack it leave it unset.
  if (request.ctx.valid()) {
    common::Json ctx = common::Json::object();
    ctx.set("trace", request.ctx.trace_id);
    ctx.set("parent", request.ctx.parent_id);
    j.set("ctx", std::move(ctx));
  }
  return j;
}

Request request_from_json(const common::Json& json) {
  check_protocol(json);
  Request request;
  request.op = op_from_string(require_string(json, "op"));
  switch (request.op) {
    case Op::Get:
      request.key = key_from_json(require(json, "key"));
      request.wait_ms = require_number(json, "wait_ms");
      if (const common::Json* read_only = json.find("read_only")) {
        ARCS_CHECK_MSG(read_only->is_bool(),
                       "serve message field is not a bool: read_only");
        request.read_only = read_only->as_bool();
      }
      break;
    case Op::Report:
      request.key = key_from_json(require(json, "key"));
      request.ticket =
          static_cast<std::uint64_t>(require_number(json, "ticket"));
      request.value = require_number(json, "value");
      break;
    case Op::Put:
      request.key = key_from_json(require(json, "key"));
      request.config =
          somp::LoopConfig::from_string(require_string(json, "config"));
      request.value = require_number(json, "value");
      request.evaluations =
          static_cast<std::uint64_t>(require_number(json, "evaluations"));
      break;
    case Op::Metrics:
      if (const common::Json* format = json.find("format")) {
        ARCS_CHECK_MSG(format->is_string(),
                       "serve message field is not a string: format");
        request.format = format->as_string();
      }
      break;
    case Op::Snapshot:
      request.hash_lo = hex_u64_parse(require_string(json, "hash_lo"));
      request.hash_hi = hex_u64_parse(require_string(json, "hash_hi"));
      break;
    case Op::WarmStart:
      request.payload = require_string(json, "payload");
      break;
    case Op::Invalidate:
      request.key = key_from_json(require(json, "key"));
      break;
    case Op::Ping:
    case Op::Save:
    case Op::Shutdown:
    case Op::FleetStatus:
    case Op::Dump:
      break;
  }
  if (const common::Json* ctx = json.find("ctx")) {
    request.ctx.trace_id =
        static_cast<std::uint64_t>(require_number(*ctx, "trace"));
    request.ctx.parent_id =
        static_cast<std::uint64_t>(require_number(*ctx, "parent"));
  }
  return request;
}

common::Json to_json(const Response& response) {
  common::Json j = common::Json::object();
  j.set("proto", std::string(kProtocol));
  j.set("status", std::string(to_string(response.status)));
  switch (response.status) {
    case Status::Hit:
      j.set("config", response.config.to_string());
      if (response.predicted) j.set("predicted", true);
      if (response.evaluations > 0) {
        j.set("best_value", response.best_value);
        j.set("evaluations", response.evaluations);
      }
      break;
    case Status::Evaluate:
      j.set("config", response.config.to_string());
      j.set("ticket", response.ticket);
      break;
    case Status::Error:
      j.set("error", response.error);
      break;
    case Status::Ok:
    case Status::Pending:
    case Status::Overloaded:
    case Status::Timeout:
      break;
  }
  if (!response.payload.empty()) j.set("payload", response.payload);
  if (!response.metrics.is_null()) j.set("metrics", response.metrics);
  return j;
}

Response response_from_json(const common::Json& json) {
  check_protocol(json);
  Response response;
  response.status = status_from_string(require_string(json, "status"));
  switch (response.status) {
    case Status::Hit:
      response.config =
          somp::LoopConfig::from_string(require_string(json, "config"));
      if (const common::Json* predicted = json.find("predicted")) {
        ARCS_CHECK_MSG(predicted->is_bool(),
                       "serve message field is not a bool: predicted");
        response.predicted = predicted->as_bool();
      }
      if (json.find("evaluations") != nullptr) {
        response.best_value = require_number(json, "best_value");
        response.evaluations =
            static_cast<std::uint64_t>(require_number(json, "evaluations"));
      }
      break;
    case Status::Evaluate:
      response.config =
          somp::LoopConfig::from_string(require_string(json, "config"));
      response.ticket =
          static_cast<std::uint64_t>(require_number(json, "ticket"));
      break;
    case Status::Error:
      response.error = require_string(json, "error");
      break;
    case Status::Ok:
    case Status::Pending:
    case Status::Overloaded:
    case Status::Timeout:
      break;
  }
  if (const common::Json* payload = json.find("payload")) {
    ARCS_CHECK_MSG(payload->is_string(),
                   "serve message field is not a string: payload");
    response.payload = payload->as_string();
  }
  if (const common::Json* metrics = json.find("metrics"))
    response.metrics = *metrics;
  return response;
}

bool write_frame(int fd, std::string_view payload) {
  // Blocking socket I/O: any lock held here must carry the
  // kAllowBlockingWhileHeld flag (the per-connection write mutex does).
  const analysis::BlockingGuard guard("serve/write_frame");
  if (payload.size() > kMaxFrameBytes) return false;
  const auto n = static_cast<std::uint32_t>(payload.size());
  unsigned char header[4] = {
      static_cast<unsigned char>((n >> 24) & 0xff),
      static_cast<unsigned char>((n >> 16) & 0xff),
      static_cast<unsigned char>((n >> 8) & 0xff),
      static_cast<unsigned char>(n & 0xff),
  };
  if (!write_all(fd, header, sizeof header)) return false;
  return write_all(
      fd, reinterpret_cast<const unsigned char*>(payload.data()),
      payload.size());
}

std::string encode_frame(std::string_view payload) {
  std::string frame;
  frame.reserve(4 + payload.size());
  const auto n = static_cast<std::uint32_t>(payload.size());
  frame.push_back(static_cast<char>((n >> 24) & 0xff));
  frame.push_back(static_cast<char>((n >> 16) & 0xff));
  frame.push_back(static_cast<char>((n >> 8) & 0xff));
  frame.push_back(static_cast<char>(n & 0xff));
  frame.append(payload);
  return frame;
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  // Compact before growing: pos_ bytes at the front are already
  // delivered frames, so the buffer stays bounded by one max frame plus
  // one read's overshoot instead of growing with connection lifetime.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > kMaxFrameBytes)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

FrameDecoder::Result FrameDecoder::next(std::string& frame) {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return Result::NeedMore;
  const auto* p = reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  const std::uint32_t n = (static_cast<std::uint32_t>(p[0]) << 24) |
                          (static_cast<std::uint32_t>(p[1]) << 16) |
                          (static_cast<std::uint32_t>(p[2]) << 8) |
                          static_cast<std::uint32_t>(p[3]);
  if (n > kMaxFrameBytes) return Result::Corrupt;
  if (avail < 4 + static_cast<std::size_t>(n)) return Result::NeedMore;
  frame.assign(buf_, pos_ + 4, n);
  pos_ += 4 + static_cast<std::size_t>(n);
  return Result::Frame;
}

std::optional<std::string> read_frame(int fd) {
  const analysis::BlockingGuard guard("serve/read_frame");
  unsigned char header[4];
  if (!read_all(fd, header, sizeof header)) return std::nullopt;
  const std::uint32_t n = (static_cast<std::uint32_t>(header[0]) << 24) |
                          (static_cast<std::uint32_t>(header[1]) << 16) |
                          (static_cast<std::uint32_t>(header[2]) << 8) |
                          static_cast<std::uint32_t>(header[3]);
  if (n > kMaxFrameBytes) return std::nullopt;
  std::string payload(n, '\0');
  if (n > 0 &&
      !read_all(fd, reinterpret_cast<unsigned char*>(payload.data()), n))
    return std::nullopt;
  return payload;
}

}  // namespace arcs::serve
