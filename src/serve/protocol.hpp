// The arcs-serve/v1 wire protocol.
//
// One request/response pair per decision: a client asks the tuning
// service for the configuration of a HistoryKey (Get), evaluates the
// proposal it may be handed, and reports the measurement back (Report).
// Payloads are `common::Json` objects tagged with the protocol string so
// both ends can reject version skew; on the socket transport each
// document travels in a frame of a 4-byte big-endian length prefix
// followed by the UTF-8 JSON bytes (see read_frame/write_frame).
//
// The same Request/Response structs back the in-process transport
// (serve::LocalClient), so hermetic tests exercise exactly the objects
// the daemon serializes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/json.hpp"
#include "core/history.hpp"
#include "telemetry/telemetry.hpp"

namespace arcs::serve {

inline constexpr std::string_view kProtocol = "arcs-serve/v1";

/// Frames larger than this are treated as protocol corruption.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

enum class Op {
  Ping,      ///< liveness probe
  Get,       ///< decision for a key (may hand back a proposal to evaluate)
  Report,    ///< measured objective for a Get-issued proposal ticket
  Put,       ///< seed the cache with a known-good decision
  Metrics,   ///< server counters + latency percentiles as JSON
  Save,      ///< persist the cache to the server's history file
  Shutdown,  ///< ask the daemon to exit its accept loop
  // Fleet ops (src/fleet/): peer-to-peer cache replication. Encoded in
  // the same arcs-serve/v1 vocabulary so any daemon can serve a joining
  // peer with no separate replication channel.
  Snapshot,    ///< serialize the cache's [hash_lo, hash_hi] key range
  WarmStart,   ///< bulk-load a peer's serialized snapshot payload
  Invalidate,  ///< drop one key from the cache (budget renegotiation)
  // Observability ops (PR 9): both carry no request fields and answer
  // with a document in `metrics`, so older peers that never send them
  // are unaffected.
  FleetStatus,  ///< aggregated fleet series/SLOs/alerts (arcs_fleetd)
  Dump,         ///< flight-recorder ring as an arcs-trace/v1 document
};

std::string_view to_string(Op op);
/// Throws common::ContractError on unknown input.
Op op_from_string(std::string_view s);

struct Request {
  Op op = Op::Ping;
  HistoryKey key;               ///< Get/Report/Put
  somp::LoopConfig config;      ///< Put: the decision to seed
  double value = 0.0;           ///< Report: measured objective; Put: best
  std::uint64_t ticket = 0;     ///< Report: which proposal was measured
  double wait_ms = 0.0;         ///< Get: block up to this long on an
                                ///< in-flight search (0 = never block)
  std::uint64_t evaluations = 0;  ///< Put: evaluations behind the decision
  std::string format;           ///< Metrics: "" = JSON, "prom" = Prometheus
                                ///< text exposition
  /// Get: a replica-read probe from a fleet router. A read-only Get
  /// answers Hit from the cache or Pending on a miss — it never starts,
  /// joins, or waits on a search, so fanning reads across replicas can
  /// never start a duplicate search. Encoded only when true; decoders
  /// treat it as optional, so routerless (older) peers interoperate.
  bool read_only = false;
  /// Snapshot: the DecisionCache::key_hash range requested, inclusive
  /// and wrapping (lo > hi wraps through UINT64_MAX — ring arcs do).
  /// The defaults select every entry.
  std::uint64_t hash_lo = 0;
  std::uint64_t hash_hi = ~std::uint64_t{0};
  /// WarmStart: a peer's serialized HistoryStore (Snapshot's payload).
  std::string payload;
  /// Distributed-tracing context of the caller's span. Encoded only when
  /// valid; decoders treat it as optional, so contextless (older) peers
  /// interoperate unchanged in both directions.
  telemetry::SpanContext ctx;
};

enum class Status {
  Ok,          ///< request applied (Report/Put/Ping/Save/Shutdown)
  Hit,         ///< Get: final decision in `config`
  Evaluate,    ///< Get: measure `config`, report with `ticket`
  Pending,     ///< Get: another client owns the search; retry later
  Overloaded,  ///< admission control rejected the request
  Timeout,     ///< Get: wait_ms elapsed before the search finished
  Error,       ///< malformed request / server-side failure (see `error`)
};

std::string_view to_string(Status status);
/// Throws common::ContractError on unknown input.
Status status_from_string(std::string_view s);

struct Response {
  Status status = Status::Ok;
  somp::LoopConfig config;   ///< Hit/Evaluate
  std::uint64_t ticket = 0;  ///< Evaluate
  std::string error;         ///< Error
  common::Json metrics;      ///< Metrics op only
  /// Hit only: `config` is a model prediction, not (yet) a measured
  /// search result. Encoded only when true; decoders treat the field as
  /// optional, so predictor-less (older) peers interoperate unchanged.
  bool predicted = false;
  /// Hit only: the measured objective and evaluation count behind the
  /// decision, so a fleet router can mirror a hot entry to replicas as a
  /// faithful Put instead of a zero-provenance copy. Encoded only when
  /// evaluations > 0; decoders treat both as optional.
  double best_value = 0.0;
  std::uint64_t evaluations = 0;
  /// Snapshot only: the serialized HistoryStore for the requested hash
  /// range (WarmStart accepts it verbatim).
  std::string payload;
};

/// Anything that can answer an arcs-serve/v1 request: TuningServer is
/// the terminal implementation, fleet::Router a forwarding one. The
/// socket transport serves a RequestHandler, so one epoll loop fronts
/// either a daemon or a whole fleet.
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;
  /// Serves one request; must be thread-safe, may block.
  virtual Response handle(const Request& request) = 0;
};

/// JSON codecs. Decoders throw common::ContractError on missing fields,
/// type mismatches, or a protocol tag other than kProtocol.
common::Json to_json(const Request& request);
common::Json to_json(const Response& response);
Request request_from_json(const common::Json& json);
Response response_from_json(const common::Json& json);

/// Writes one length-prefixed frame; false on any short write / EPIPE.
bool write_frame(int fd, std::string_view payload);

/// Reads one frame. Empty optional on clean EOF, broken connection, or a
/// length prefix beyond kMaxFrameBytes.
std::optional<std::string> read_frame(int fd);

/// One length-prefixed frame as bytes (header + payload), for callers
/// that buffer writes instead of writing a socket directly.
std::string encode_frame(std::string_view payload);

/// Incremental frame reassembly for nonblocking reads: feed() whatever
/// the socket produced — any split, including mid-header — and next()
/// yields complete frames as they close. A length prefix beyond
/// kMaxFrameBytes is Corrupt: the stream has lost sync and the caller
/// must drop the connection (resynchronizing a length-prefixed stream is
/// impossible). Buffered bytes are bounded by kMaxFrameBytes plus one
/// read's worth of overshoot.
class FrameDecoder {
 public:
  enum class Result {
    NeedMore,  ///< no complete frame buffered yet
    Frame,     ///< one frame extracted into the out-param
    Corrupt,   ///< oversized length prefix; connection must die
  };

  void feed(const char* data, std::size_t n);
  Result next(std::string& frame);

  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix, compacted lazily
};

}  // namespace arcs::serve
