// Umbrella header for the ARCS tuning service (see docs/SERVE.md).
//
// Typical in-process use:
//
//   serve::TuningServer server;           // Exhaustive search sessions
//   serve::LocalClient client{server};    // a RemoteTuner
//   RunOptions opts;
//   opts.strategy = TuningStrategy::Remote;
//   opts.remote = &client;
//   run_app(app, machine, opts);          // decisions come from `server`
//
// Daemon use: tools/arcsd.cpp wraps a TuningServer in a SocketServer;
// tools/arcs_client.cpp (or a serve::SocketClient in any process) speaks
// the arcs-serve/v1 protocol to it over a Unix-domain socket.
#pragma once

#include "serve/cache.hpp"     // IWYU pragma: export
#include "serve/client.hpp"    // IWYU pragma: export
#include "serve/protocol.hpp"  // IWYU pragma: export
#include "serve/server.hpp"    // IWYU pragma: export
#include "serve/socket.hpp"    // IWYU pragma: export
