#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/build_info.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "sim/presets.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"

namespace arcs::serve {

namespace {

constexpr std::size_t kLatencyRingCapacity = 8192;

using Clock = std::chrono::steady_clock;

}  // namespace

TuningServer::TuningServer(ServerOptions options)
    : options_(std::move(options)), cache_(options_.cache) {
  latency_ring_.resize(kLatencyRingCapacity, 0.0);
  if (options_.machines.empty()) {
    for (const auto& spec :
         {sim::crill(), sim::minotaur(), sim::haswell(), sim::testbox()})
      machines_.emplace(spec.name, spec);
  } else {
    for (const auto& spec : options_.machines)
      machines_.emplace(spec.name, spec);
  }
}

const harmony::SearchSpace& TuningServer::space_for(
    const std::string& machine) {
  const std::lock_guard<analysis::Mutex> lock(spaces_mu_);
  const auto cached = spaces_.find(machine);
  if (cached != spaces_.end()) return cached->second;
  const auto spec = machines_.find(machine);
  ARCS_CHECK_MSG(spec != machines_.end(),
                 "tuning service knows no machine named '" + machine + "'");
  return spaces_
      .emplace(machine,
               arcs_search_space(spec->second, options_.tune_frequency,
                                 options_.tune_placement,
                                 options_.conditional_space))
      .first->second;
}

std::size_t TuningServer::inflight() const {
  const std::lock_guard<analysis::Mutex> lock(sessions_mu_);
  return sessions_.size();
}

Response TuningServer::handle(const Request& request) {
  const std::uint64_t index = metrics_.requests.add();
  // Sample 1-in-256 latencies per stripe: the reservoir mutex must not become the
  // serialization point of an otherwise shard-parallel hit path.
  const bool sample_latency = (index & 0xff) == 0;
  // Per-op histograms: every Get is timed (misses and predicted answers
  // are observed exhaustively — they are rare), but *hit* observations
  // are sampled 1-in-16 per stripe so the histogram's shared buckets
  // never become the hit path's serialization point.
  const bool is_get = request.op == Op::Get;
  const bool sample_hit = (index & 0xf) == 0;
  const bool timed = sample_latency || is_get;
  const auto start = timed ? Clock::now() : Clock::time_point{};
  // The request's span, causally linked to the caller's span when the
  // frame carried a SpanContext (contextless peers start a new trace).
  const telemetry::ScopedSpan span(
      telemetry::Category::Serve,
      "serve/" + std::string(to_string(request.op)), request.ctx, 0,
      request.ticket);
  Response response;
  try {
    switch (request.op) {
      case Op::Ping:
        response.status = Status::Ok;
        break;
      case Op::Get:
        response = handle_get(request);
        break;
      case Op::Report:
        response = handle_report(request);
        break;
      case Op::Put:
        response = handle_put(request);
        break;
      case Op::Metrics:
        response.status = Status::Ok;
        if (request.format == "prom")
          response.metrics = prometheus_text();
        else
          response.metrics = metrics_json();
        break;
      case Op::Save:
        response = handle_save();
        break;
      case Op::Snapshot:
        response = handle_snapshot(request);
        break;
      case Op::WarmStart:
        response = handle_warm_start(request);
        break;
      case Op::Invalidate:
        response = handle_invalidate(request);
        break;
      case Op::Shutdown:
        shutdown_.store(true, std::memory_order_release);
        sessions_cv_.notify_all();
        response.status = Status::Ok;
        break;
      case Op::FleetStatus:
        // Aggregated status lives in the fleet router (arcs_fleetd); a
        // terminal tuning daemon has nothing fleet-wide to report.
        response.status = Status::Error;
        response.error = "fleet_status: not a fleet router";
        break;
      case Op::Dump: {
        telemetry::FlightRecorder& recorder =
            telemetry::FlightRecorder::instance();
        if (!recorder.attached()) {
          response.status = Status::Error;
          response.error = "dump: flight recorder is not attached";
          break;
        }
        response.status = Status::Ok;
        response.metrics = recorder.dump();
        break;
      }
    }
  } catch (const common::ContractError& e) {
    response = Response{};
    response.status = Status::Error;
    response.error = e.what();
  }
  if (timed) {
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (sample_latency) {
      record_latency(seconds);
      metrics_.latency.observe(seconds);
    }
    if (is_get) {
      // Every timed Get is also a slow-request exemplar candidate: the
      // flight recorder keeps the top-K slowest per outcome with this
      // span's trace ids, so a tail-latency spike in a scrape links to
      // an actual trace. No-op (one relaxed load) when not attached.
      telemetry::FlightRecorder& recorder =
          telemetry::FlightRecorder::instance();
      const auto note = [&](std::string_view metric) {
        if (!recorder.attached()) return;
        recorder.note_exemplar(
            metric, seconds,
            telemetry::Histogram::bucket_upper_bound(
                telemetry::Histogram::bucket_index(seconds)),
            span.context());
      };
      if (response.status == Status::Hit) {
        if (response.predicted) {
          metrics_.predicted_latency.observe(seconds);
          note("serve/predicted_seconds");
        } else if (sample_hit) {
          metrics_.hit_latency.observe(seconds);
          note("serve/hit_seconds");
        }
      } else {
        metrics_.miss_latency.observe(seconds);
        note("serve/miss_seconds");
      }
    }
  }
  return response;
}

Response TuningServer::handle_get(const Request& request) {
  Response response;

  // Fast path: finished decisions never need the sessions lock.
  // Provisional (predicted) entries fall through to the locked path so a
  // refinement search keeps attracting evaluation workers.
  if (const auto hit = cache_.get(request.key)) {
    if (!hit->provisional) {
      metrics_.hits.add();
      sample_cache_hit_rate();
      response.status = Status::Hit;
      response.config = hit->config;
      response.best_value = hit->best_value;
      response.evaluations = hit->evaluations;
      return response;
    }
  }

  // A replica-read probe (fleet router fan-out) must never become a
  // search driver, joiner, or waiter: on anything but a finished cached
  // decision it answers Pending so the router falls through to the
  // key's owner. Search dedup therefore stays a fleet-wide invariant.
  if (request.read_only) {
    metrics_.readonly_misses.add();
    response.status = Status::Pending;
    return response;
  }

  const bool can_wait = request.wait_ms > 0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             std::max(0.0, request.wait_ms)));
  bool counted_wait = false;

  std::unique_lock<analysis::Mutex> lock(sessions_mu_);
  for (;;) {
    // Re-check under the lock: the search may have finished between the
    // fast path (or our cv wake-up) and here.
    std::optional<CachedDecision> cached = cache_.get(request.key);
    if (cached && !cached->provisional) {
      metrics_.hits.add();
      sample_cache_hit_rate();
      response.status = Status::Hit;
      response.config = cached->config;
      response.best_value = cached->best_value;
      response.evaluations = cached->evaluations;
      return response;
    }

    const auto it = sessions_.find(request.key);
    if (it == sessions_.end()) {
      if (cached) {
        // A provisional prediction with no refinement in flight (either
        // refinement is off, or admission was full when it was made):
        // serve the prediction as-is.
        metrics_.provisional_hits.add();
        response.status = Status::Hit;
        response.config = cached->config;
        response.predicted = true;
        return response;
      }
      // Cold start. With a trained model the client gets its prediction
      // in this one round trip; the search (if any) runs off the
      // client's critical path, driven by later Gets.
      std::optional<somp::LoopConfig> predicted;
      if (options_.predictor != nullptr)
        predicted = options_.predictor->predict_config(request.key);
      const bool admission_full = options_.max_inflight > 0 &&
                                  sessions_.size() >= options_.max_inflight;
      if (admission_full && !predicted) {
        metrics_.overloaded.add();
        response.status = Status::Overloaded;
        return response;
      }
      const harmony::SearchSpace& space = space_for(request.key.machine);
      harmony::StrategyKind method = options_.method;
      harmony::StrategyOptions search = options_.search;
      // Deterministic per-key seed: the same key gets the same search no
      // matter which client arrives first or when.
      search.seed = common::hash_combine(options_.search.seed,
                                         DecisionCache::key_hash(request.key));
      if (predicted) {
        metrics_.predictions.add();
        metrics_.misses.add();
        CachedDecision provisional;
        provisional.config = *predicted;
        provisional.provisional = true;
        cache_.put(request.key, provisional);
        if (options_.refine_predictions && !admission_full) {
          // Refinement session, seeded at the prediction, created with
          // no outstanding proposal: the next Get joins as its first
          // evaluation worker.
          method = harmony::StrategyKind::ModelSeeded;
          search.model_seeded.center_frac =
              center_frac_for(space, *predicted);
          harmony::SessionOptions session_opts;
          session_opts.memoize = true;
          search::SearchOptions search_opts;
          search_opts.base = search;
          search_opts.surrogate = options_.surrogate;
          search_opts.portfolio = options_.portfolio;
          auto inflight = std::make_unique<InFlight>();
          inflight->session = std::make_unique<harmony::Session>(
              space, search::make_strategy(method, search_opts),
              session_opts);
          sessions_.emplace(request.key, std::move(inflight));
          metrics_.searches_started.add();
        }
        response.status = Status::Hit;
        response.config = *predicted;
        response.predicted = true;
        return response;
      }
      // This client becomes the key's driver — admission said yes above.
      harmony::SessionOptions session_opts;
      session_opts.memoize = method != harmony::StrategyKind::Exhaustive;
      search::SearchOptions search_opts;
      search_opts.base = search;
      search_opts.surrogate = options_.surrogate;
      search_opts.portfolio = options_.portfolio;
      auto inflight = std::make_unique<InFlight>();
      {
        const telemetry::ScopedSpan propose(telemetry::Category::Harmony,
                                            "harmony/propose");
        inflight->session = std::make_unique<harmony::Session>(
            space, search::make_strategy(method, search_opts),
            session_opts);
        inflight->proposal = inflight->session->next_values();
      }
      inflight->outstanding = true;
      inflight->ticket = next_ticket_++;
      response.status = Status::Evaluate;
      response.config = config_from_values(inflight->proposal);
      response.ticket = inflight->ticket;
      sessions_.emplace(request.key, std::move(inflight));
      metrics_.misses.add();
      metrics_.searches_started.add();
      return response;
    }

    InFlight& inflight = *it->second;
    if (!inflight.outstanding) {
      if (inflight.session->converged()) {
        // Defensive: a converged session is normally retired on the
        // report path; publish it here too rather than proposing again.
        CachedDecision decision;
        decision.config =
            config_from_values(inflight.session->best_values());
        decision.best_value = inflight.session->best_value();
        decision.evaluations = inflight.evaluations;
        cache_.put(request.key, decision);
        sessions_.erase(it);
        metrics_.searches_completed.add();
        metrics_.hits.add();
        lock.unlock();
        sessions_cv_.notify_all();
        response.status = Status::Hit;
        response.config = decision.config;
        response.best_value = decision.best_value;
        response.evaluations = decision.evaluations;
        return response;
      }
      // Join the in-flight search as its next evaluation worker.
      {
        const telemetry::ScopedSpan propose(telemetry::Category::Harmony,
                                            "harmony/propose");
        inflight.proposal = inflight.session->next_values();
      }
      inflight.outstanding = true;
      inflight.ticket = next_ticket_++;
      metrics_.joins.add();
      response.status = Status::Evaluate;
      response.config = config_from_values(inflight.proposal);
      response.ticket = inflight.ticket;
      return response;
    }

    // A proposal is out with another client. If a provisional
    // prediction exists for the key, serve it instead of making the
    // caller wait or retry — the refinement is making progress through
    // the client holding the proposal.
    if (cached) {
      metrics_.provisional_hits.add();
      response.status = Status::Hit;
      response.config = cached->config;
      response.predicted = true;
      return response;
    }
    if (!can_wait) {
      metrics_.pending_replies.add();
      response.status = Status::Pending;
      return response;
    }
    if (!counted_wait) {
      metrics_.waits.add();
      counted_wait = true;
    }
    waiting_now_.fetch_add(1, std::memory_order_relaxed);
    const std::cv_status wait_status =
        sessions_cv_.wait_until(lock, deadline);
    waiting_now_.fetch_sub(1, std::memory_order_relaxed);
    if (wait_status == std::cv_status::timeout) {
      metrics_.timeouts.add();
      response.status = Status::Timeout;
      return response;
    }
  }
}

Response TuningServer::handle_report(const Request& request) {
  Response response;
  std::unique_lock<analysis::Mutex> lock(sessions_mu_);
  const auto it = sessions_.find(request.key);
  if (it == sessions_.end() || !it->second->outstanding ||
      it->second->ticket != request.ticket) {
    // The search finished (or was restarted) while this measurement ran;
    // drop it — reports are idempotent from the client's point of view.
    metrics_.stale_reports.add();
    response.status = Status::Ok;
    return response;
  }
  InFlight& inflight = *it->second;
  {
    const telemetry::ScopedSpan report(telemetry::Category::Harmony,
                                       "harmony/report", {}, 0,
                                       request.ticket);
    inflight.session->report(request.value);
  }
  inflight.outstanding = false;
  ++inflight.evaluations;
  metrics_.reports.add();
  if (inflight.session->converged()) {
    CachedDecision decision;
    decision.config = config_from_values(inflight.session->best_values());
    decision.best_value = inflight.session->best_value();
    decision.evaluations = inflight.evaluations;
    // Publish BEFORE retiring the session, both under sessions_mu_: a
    // concurrent Get must see either the in-flight session or the cached
    // result, never neither (which would start a duplicate search).
    cache_.put(request.key, decision);
    sessions_.erase(it);
    metrics_.searches_completed.add();
  }
  lock.unlock();
  sessions_cv_.notify_all();
  response.status = Status::Ok;
  return response;
}

Response TuningServer::handle_put(const Request& request) {
  CachedDecision decision;
  decision.config = request.config;
  decision.best_value = request.value;
  decision.evaluations = request.evaluations;
  {
    // Under sessions_mu_ so a Get blocked between its cache check and its
    // cv wait cannot miss the wake-up for this key.
    const std::lock_guard<analysis::Mutex> lock(sessions_mu_);
    cache_.put(request.key, decision);
  }
  sessions_cv_.notify_all();
  metrics_.puts.add();
  Response response;
  response.status = Status::Ok;
  return response;
}

Response TuningServer::handle_save() {
  Response response;
  if (options_.history_path.empty()) {
    response.status = Status::Error;
    response.error = "server has no history path configured";
    return response;
  }
  cache_.snapshot().save(options_.history_path);
  response.status = Status::Ok;
  return response;
}

Response TuningServer::handle_snapshot(const Request& request) {
  // Serialized v3 history text for the requested hash arc. A joining
  // peer pulls its ring range from the daemon that served it while the
  // peer was absent, then WarmStarts itself from the payload.
  Response response;
  response.payload =
      cache_.snapshot_range(request.hash_lo, request.hash_hi).serialize();
  ARCS_CHECK_MSG(response.payload.size() + 256 <= kMaxFrameBytes,
                 "snapshot payload would exceed the frame limit; "
                 "request a narrower hash range");
  metrics_.snapshots.add();
  response.status = Status::Ok;
  return response;
}

Response TuningServer::handle_warm_start(const Request& request) {
  Response response;
  HistoryStore store = HistoryStore::deserialize(request.payload);
  // Re-rank the payload's best entries under the server's objective
  // from the recorded per-candidate components (no-op for time, which
  // is what the entries were searched under).
  if (options_.objective != search::Objective::Time)
    rescore_history(store, options_.objective);
  {
    // Under sessions_mu_ like Put: a Get blocked between its cache check
    // and its cv wait must not miss the wake-up for a loaded key.
    const std::lock_guard<analysis::Mutex> lock(sessions_mu_);
    cache_.load(store);
  }
  sessions_cv_.notify_all();
  metrics_.warm_starts.add();
  metrics_.warm_start_entries.add(store.entries().size());
  common::Json loaded = common::Json::object();
  loaded.set("loaded", store.entries().size());
  response.metrics = std::move(loaded);
  response.status = Status::Ok;
  return response;
}

Response TuningServer::handle_invalidate(const Request& request) {
  // Drops only the cached decision; an in-flight search for the key is
  // left to finish (its result reflects live measurements and will be
  // re-invalidated by the arbiter if the cap moved again).
  Response response;
  if (cache_.erase(request.key)) metrics_.invalidations.add();
  response.status = Status::Ok;
  return response;
}

void TuningServer::sample_cache_hit_rate() const {
  telemetry::Tracer& tracer = telemetry::Tracer::instance();
  if (!tracer.enabled()) return;
  const double hits = static_cast<double>(metrics_.hits.load());
  const double misses = static_cast<double>(metrics_.misses.load());
  const double lookups = hits + misses;
  if (lookups <= 0) return;
  tracer.counter(telemetry::Category::Serve, telemetry::TimeDomain::Host,
                 "serve_cache_hit_rate", tracer.host_track(), tracer.now(),
                 hits / lookups);
}

void TuningServer::record_latency(double seconds) {
  const std::lock_guard<analysis::Mutex> lock(latency_mu_);
  latency_ring_[latency_next_] = seconds;
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  latency_count_ = std::min(latency_count_ + 1, latency_ring_.size());
}

common::Json TuningServer::metrics_json() const {
  common::Json j = common::Json::object();
  j.set("proto", std::string(kProtocol));
  j.set("uptime_s", uptime_s());
  j.set("build", common::build_info_json());
  common::Json counters = common::Json::object();
  counters.set("requests", metrics_.requests.load());
  counters.set("hits", metrics_.hits.load());
  counters.set("misses", metrics_.misses.load());
  counters.set("joins", metrics_.joins.load());
  counters.set("pending_replies", metrics_.pending_replies.load());
  counters.set("waits", metrics_.waits.load());
  counters.set("timeouts", metrics_.timeouts.load());
  counters.set("overloaded", metrics_.overloaded.load());
  counters.set("reports", metrics_.reports.load());
  counters.set("stale_reports", metrics_.stale_reports.load());
  counters.set("puts", metrics_.puts.load());
  counters.set("searches_started", metrics_.searches_started.load());
  counters.set("searches_completed", metrics_.searches_completed.load());
  counters.set("predictions", metrics_.predictions.load());
  counters.set("provisional_hits", metrics_.provisional_hits.load());
  counters.set("readonly_misses", metrics_.readonly_misses.load());
  counters.set("snapshots", metrics_.snapshots.load());
  counters.set("warm_starts", metrics_.warm_starts.load());
  counters.set("warm_start_entries", metrics_.warm_start_entries.load());
  counters.set("invalidations", metrics_.invalidations.load());
  j.set("counters", counters);
  common::Json gauges = common::Json::object();
  gauges.set("inflight", inflight());
  gauges.set("waiting_now", waiting_now());
  gauges.set("cache_size", cache_.size());
  gauges.set("cache_provisional", cache_.provisional_count());
  gauges.set("cache_evictions", cache_.evictions());
  j.set("gauges", gauges);
  std::vector<double> scratch;
  {
    const std::lock_guard<analysis::Mutex> lock(latency_mu_);
    scratch.assign(latency_ring_.begin(),
                   latency_ring_.begin() +
                       static_cast<std::ptrdiff_t>(latency_count_));
  }
  common::Json latency = common::Json::object();
  latency.set("samples", scratch.size());
  latency.set("p50_us", scratch.empty()
                            ? 0.0
                            : common::percentile(scratch, 50.0) * 1e6);
  latency.set("p95_us", scratch.empty()
                            ? 0.0
                            : common::percentile(scratch, 95.0) * 1e6);
  j.set("latency", latency);
  common::Json per_op = common::Json::object();
  // One snapshot per histogram: the quantile walk and the wire form
  // (sparse buckets the fleet collector re-merges) read the same state.
  const auto op_block = [](const telemetry::Histogram& h) {
    const telemetry::HistogramSnapshot snap = h.snapshot();
    common::Json block = snap.to_json();
    block.set("p50_us", snap.quantile(0.50) * 1e6);
    block.set("p99_us", snap.quantile(0.99) * 1e6);
    return block;
  };
  per_op.set("hit", op_block(metrics_.hit_latency));
  per_op.set("miss", op_block(metrics_.miss_latency));
  per_op.set("predicted", op_block(metrics_.predicted_latency));
  j.set("latency_per_op", per_op);
  return j;
}

std::string TuningServer::prometheus_text() const {
  // Gauges are point-in-time: refresh them in the registry at scrape
  // time so the exposition matches metrics_json()'s values.
  registry_.gauge("serve/inflight").set(static_cast<double>(inflight()));
  registry_.gauge("serve/waiting_now")
      .set(static_cast<double>(waiting_now()));
  registry_.gauge("serve/cache_size").set(static_cast<double>(cache_.size()));
  registry_.gauge("serve/cache_provisional")
      .set(static_cast<double>(cache_.provisional_count()));
  registry_.gauge("serve/cache_evictions")
      .set(static_cast<double>(cache_.evictions()));
  // Identity first: what this process is, then what it measured.
  const common::BuildInfo& build = common::build_info();
  std::string out;
  out += "# TYPE arcs_build_info gauge\n";
  out += "arcs_build_info{version=\"" + build.version + "\",git=\"" +
         build.git_describe + "\",sync_check=\"" +
         (build.sync_check ? "1" : "0") + "\",sanitizer=\"" +
         build.sanitizer + "\"} 1\n";
  out += "# TYPE arcs_uptime_seconds gauge\n";
  out += "arcs_uptime_seconds " + std::to_string(uptime_s()) + "\n";
  out += registry_.prometheus_text();
  return out;
}

void TuningServer::publish_metrics(apex::Apex& apex) const {
  apex.sample_counter("serve/requests",
                      static_cast<double>(metrics_.requests.load()));
  apex.sample_counter("serve/hits",
                      static_cast<double>(metrics_.hits.load()));
  apex.sample_counter("serve/misses",
                      static_cast<double>(metrics_.misses.load()));
  apex.sample_counter("serve/joins",
                      static_cast<double>(metrics_.joins.load()));
  apex.sample_counter("serve/timeouts",
                      static_cast<double>(metrics_.timeouts.load()));
  apex.sample_counter("serve/overloaded",
                      static_cast<double>(metrics_.overloaded.load()));
  apex.sample_counter("serve/searches_started",
                      static_cast<double>(metrics_.searches_started.load()));
  apex.sample_counter("serve/searches_completed",
                      static_cast<double>(
                          metrics_.searches_completed.load()));
  apex.sample_counter("serve/predictions",
                      static_cast<double>(metrics_.predictions.load()));
  apex.sample_counter("serve/provisional_hits",
                      static_cast<double>(metrics_.provisional_hits.load()));
  apex.sample_counter("serve/cache_evictions",
                      static_cast<double>(cache_.evictions()));
}

}  // namespace arcs::serve
