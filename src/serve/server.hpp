// harmonyd's brain: the multi-client ARCS tuning service.
//
// One TuningServer owns (a) the shared DecisionCache of finished search
// results and (b) the Harmony search sessions currently in flight, keyed
// by the full HistoryKey. Clients speak protocol.hpp Requests through any
// transport (serve::LocalClient in-process, serve::SocketServer over a
// Unix socket); handle() is fully thread-safe.
//
// Session-ownership state machine for Get(key):
//
//            cache hit ────────────────────────────► Hit(config)
//   Get ──►  miss, no in-flight search ─ admission ► Evaluate(c, ticket)
//            │                               └ full ► Overloaded
//            miss, in-flight, no outstanding ──────► Evaluate(c, ticket)
//            miss, in-flight, proposal outstanding
//                 wait_ms == 0 ────────────────────► Pending
//                 wait_ms  > 0 ── cv wait ─ done ──► Hit / Evaluate
//                                         └ expiry ► Timeout
//
// The first client to miss becomes the key's *driver*: it receives the
// session's proposals one at a time (Evaluate carries a ticket) and
// reports measurements back. While a proposal is outstanding, further
// clients either join as the next evaluation worker (strict Harmony
// propose/report alternation means at most one outstanding proposal per
// key — joiners get the *next* proposal once the current one is
// reported), wait, or go do a timestep at the ambient configuration and
// ask again. No two searches ever run for one key: the finished result
// is published to the cache *before* the in-flight session is retired,
// both under the sessions mutex, so there is no window in which a new
// Get could see neither.
//
// With a ServerOptions::predictor attached, a cold-start miss is instead
// answered Hit(predicted) in one round trip: the model's configuration is
// published to the cache as a *provisional* entry and (by default) a
// model-seeded refinement search is started with no outstanding proposal,
// so later Gets join it as evaluation workers exactly like any in-flight
// search. While the refinement's proposal is out with another client,
// Gets are served the provisional prediction instead of Pending; when the
// search retires, its final decision replaces the provisional entry in
// place. Provisional entries never reach the hit fast path, snapshot(),
// or Save — they are a stand-in, not a measured best.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/sync.hpp"
#include "apex/apex.hpp"
#include "core/predictor.hpp"
#include "core/search_space.hpp"
#include "harmony/session.hpp"
#include "harmony/strategy_factory.hpp"
#include "search/factory.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "sim/machine.hpp"
#include "telemetry/metrics.hpp"

namespace arcs::serve {

struct ServerOptions {
  CacheOptions cache;
  /// Search method for server-owned sessions. Exhaustive matches the
  /// paper's offline search and is seed-independent — the same optimum
  /// no matter which client drives, which the differential tests rely on.
  harmony::StrategyKind method = harmony::StrategyKind::Exhaustive;
  harmony::StrategyOptions search;
  /// Options for the surrogate / portfolio methods (src/search/).
  search::SurrogateOptions surrogate;
  search::PortfolioOptions portfolio;
  /// Extra search dimensions (see ArcsOptions).
  bool tune_frequency = false;
  bool tune_placement = false;
  /// Conditional Table-I space: chunk active only under dynamic/guided
  /// (see core/search_space.hpp). Server-owned exhaustive searches then
  /// skip inactive-coordinate duplicates.
  bool conditional_space = false;
  /// Objective used to re-score warm-start payloads from their recorded
  /// per-candidate (time, energy) components: a server tuned for EDP can
  /// boot from a time-tuned history and still serve EDP-optimal configs.
  search::Objective objective = search::Objective::Time;
  /// Bound on concurrently in-flight searches; a Get that would start
  /// one more gets Overloaded. 0 = unbounded.
  std::size_t max_inflight = 0;
  /// Where Op::Save persists the cache ("" disables Save).
  std::string history_path;
  /// Machines the server can build search spaces for. Empty = the four
  /// built-in presets (crill, minotaur, haswell, testbox). A Get for an
  /// unknown machine is answered with Error.
  std::vector<sim::MachineSpec> machines;
  /// Learned model consulted on cache misses (must outlive the server;
  /// implementations must be thread-safe). When it has a prediction for
  /// the missed key, the Get is answered Hit(predicted) in one round trip
  /// — zero search evaluations on the client's critical path — and the
  /// prediction is published to the cache as a provisional entry.
  const ConfigPredictor* predictor = nullptr;
  /// Also start a model-seeded refinement search for each predicted key;
  /// later Gets join it as evaluation workers and the final result
  /// replaces the provisional entry when the search retires. Off =
  /// predictions are served as-is, forever.
  bool refine_predictions = true;
};

/// The server's named instruments, registered in a telemetry
/// MetricsRegistry (one per server) and exposed as references so call
/// sites read like plain fields. All counters are the striped
/// telemetry::Counter — concurrent add()ers land on per-thread slots, so
/// the hit path scales with clients instead of serializing on its own
/// bookkeeping. The registry behind them renders the same instruments as
/// Prometheus text and JSON snapshots (arcsd `metrics` op,
/// --metrics-interval).
struct ServerMetrics {
  explicit ServerMetrics(telemetry::MetricsRegistry& registry)
      : hits(registry.counter("serve/hits")),
        misses(registry.counter("serve/misses")),
        joins(registry.counter("serve/joins")),
        pending_replies(registry.counter("serve/pending_replies")),
        waits(registry.counter("serve/waits")),
        timeouts(registry.counter("serve/timeouts")),
        overloaded(registry.counter("serve/overloaded")),
        reports(registry.counter("serve/reports")),
        stale_reports(registry.counter("serve/stale_reports")),
        puts(registry.counter("serve/puts")),
        searches_started(registry.counter("serve/searches_started")),
        searches_completed(registry.counter("serve/searches_completed")),
        predictions(registry.counter("serve/predictions")),
        provisional_hits(registry.counter("serve/provisional_hits")),
        readonly_misses(registry.counter("serve/readonly_misses")),
        snapshots(registry.counter("serve/snapshots")),
        warm_starts(registry.counter("serve/warm_starts")),
        warm_start_entries(registry.counter("serve/warm_start_entries")),
        invalidations(registry.counter("serve/invalidations")),
        requests(registry.counter("serve/requests")),
        latency(registry.histogram("serve/request_seconds")),
        hit_latency(registry.histogram("serve/hit_seconds")),
        miss_latency(registry.histogram("serve/miss_seconds")),
        predicted_latency(registry.histogram("serve/predicted_seconds")) {}

  telemetry::Counter& hits;
  telemetry::Counter& misses;    ///< searches this Get started
  telemetry::Counter& joins;     ///< Evaluate from an existing search
  telemetry::Counter& pending_replies;
  telemetry::Counter& waits;     ///< Gets that blocked on a cv
  telemetry::Counter& timeouts;
  telemetry::Counter& overloaded;
  telemetry::Counter& reports;
  telemetry::Counter& stale_reports;
  telemetry::Counter& puts;
  telemetry::Counter& searches_started;
  telemetry::Counter& searches_completed;
  telemetry::Counter& predictions;       ///< misses answered by the model
  telemetry::Counter& provisional_hits;  ///< Gets served a cached prediction
  telemetry::Counter& readonly_misses;   ///< replica probes answered Pending
  telemetry::Counter& snapshots;         ///< fleet Snapshot ops served
  telemetry::Counter& warm_starts;       ///< fleet WarmStart ops served
  telemetry::Counter& warm_start_entries;  ///< entries loaded by WarmStart
  telemetry::Counter& invalidations;     ///< keys dropped by Invalidate
  telemetry::Counter& requests;
  telemetry::Histogram& latency;  ///< sampled request latency (seconds)
  // Per-op Get latency, split by outcome so a p99 regression on the
  // lock-free hit path cannot hide inside search-driven miss latency.
  // Hits are sampled 1-in-16 per counter stripe (two clock reads would
  // otherwise be the hit path's biggest cost); misses and predicted
  // answers are rare and observed exhaustively.
  telemetry::Histogram& hit_latency;        ///< Get → Hit (measured)
  telemetry::Histogram& miss_latency;       ///< Get → anything else
  telemetry::Histogram& predicted_latency;  ///< Get → Hit (predicted)
};

class TuningServer : public RequestHandler {
 public:
  explicit TuningServer(ServerOptions options = {});

  /// Serves one request; thread-safe, may block (Get with wait_ms > 0).
  Response handle(const Request& request) override;

  DecisionCache& cache() { return cache_; }
  const ServerOptions& options() const { return options_; }
  const ServerMetrics& metrics() const { return metrics_; }

  /// Searches currently in flight (sessions owned, not yet in the cache).
  std::size_t inflight() const;
  /// Gets currently blocked inside a cv wait (test/monitoring gauge).
  std::size_t waiting_now() const {
    return waiting_now_.load(std::memory_order_relaxed);
  }

  /// True once an Op::Shutdown request was served; the daemon's loop
  /// polls this to exit.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Seconds since this server was constructed (scrape identity).
  double uptime_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_time_)
        .count();
  }

  /// Counters, gauges, and latency percentiles as one JSON object.
  common::Json metrics_json() const;
  /// Prometheus text exposition of the server's instruments (gauges
  /// refreshed first). The `metrics` op serves this for format="prom".
  std::string prometheus_text() const;
  /// The registry all server instruments live in.
  telemetry::MetricsRegistry& registry() const { return registry_; }
  /// Mirrors the counters into APEX user counters ("serve/hits", ...).
  void publish_metrics(apex::Apex& apex) const;

 private:
  struct InFlight {
    std::unique_ptr<harmony::Session> session;
    bool outstanding = false;  ///< a proposal is out being measured
    std::uint64_t ticket = 0;  ///< ticket of that proposal
    std::vector<harmony::Value> proposal;
    std::uint64_t evaluations = 0;
  };

  Response handle_get(const Request& request);
  Response handle_report(const Request& request);
  Response handle_put(const Request& request);
  Response handle_save();
  Response handle_snapshot(const Request& request);
  Response handle_warm_start(const Request& request);
  Response handle_invalidate(const Request& request);

  /// Search space for a machine name (built lazily, cached). Throws
  /// common::ContractError for unknown machines.
  const harmony::SearchSpace& space_for(const std::string& machine);

  void record_latency(double seconds);
  /// Emits a "serve_cache_hit_rate" counter sample onto the trace (no-op
  /// when tracing is off).
  void sample_cache_hit_rate() const;

  ServerOptions options_;
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
  DecisionCache cache_;
  mutable telemetry::MetricsRegistry registry_;  ///< declared before metrics_
  ServerMetrics metrics_{registry_};

  std::map<std::string, sim::MachineSpec> machines_;
  // Ranked above sessions_mu_: space_for() runs under the sessions lock.
  analysis::Mutex spaces_mu_{"serve/spaces",
                             analysis::sync::rank::kServeSpaces};
  std::map<std::string, harmony::SearchSpace> spaces_;

  mutable analysis::Mutex sessions_mu_{
      "serve/sessions", analysis::sync::rank::kServeSessions};
  analysis::CondVar sessions_cv_;
  std::map<HistoryKey, std::unique_ptr<InFlight>> sessions_;
  std::uint64_t next_ticket_ = 1;

  std::atomic<std::size_t> waiting_now_{0};
  std::atomic<bool> shutdown_{false};

  mutable analysis::Mutex latency_mu_{
      "serve/latency", analysis::sync::rank::kServeLatency};
  std::vector<double> latency_ring_;
  std::size_t latency_next_ = 0;
  std::size_t latency_count_ = 0;
};

}  // namespace arcs::serve
