// Unix-domain socket transport for the tuning service.
//
// SocketServer is an epoll event loop: ONE loop thread owns the
// listening socket and every connection's state (frame reassembly
// buffer, pending-write buffer, idle clock), so the read/accept/write
// paths take no locks at all. All fds are nonblocking; reads feed a
// per-connection FrameDecoder, and complete frames are either handled
// inline on the loop (everything that cannot block: Ping, hit-path Get,
// Report, Put, Metrics, Shutdown) or — for requests that may block the
// caller (Get with wait_ms > 0) or touch the filesystem (Save) — pushed
// onto a BoundedMpmcQueue drained by a fixed worker pool. The queue IS
// the admission control: when the pool falls `queue_capacity` requests
// behind, try_push fails and the loop answers Overloaded immediately.
// Workers hand finished responses back to the loop through a small
// completions vector + eventfd wake-up, so every socket write happens on
// the loop thread and responses to one connection batch naturally into
// single send() calls.
//
// Backpressure: responses append to a per-connection write buffer that
// drains as EPOLLOUT allows. When a client stops reading and the buffer
// passes `max_pending_write_bytes`, the loop stops *reading* that
// connection (EPOLLIN off) until the backlog drains below half — a slow
// client throttles itself, never the loop or other connections.
// Connections idle longer than `idle_timeout_s` with nothing in flight
// are closed by a periodic sweep.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/sync.hpp"
#include "common/check.hpp"
#include "exec/queue.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace arcs::serve {

struct SocketServerOptions {
  std::size_t workers = 4;
  /// Dispatch-queue depth; the blocking-op backpressure threshold.
  std::size_t queue_capacity = 128;
  /// Per-connection pending-write cap: past this the connection's reads
  /// pause until the client drains half the backlog.
  std::size_t max_pending_write_bytes = 1u << 20;
  /// Close connections idle this long with no request in flight.
  /// 0 = never.
  double idle_timeout_s = 0.0;
};

class SocketServer {
 public:
  /// Binds and starts serving immediately. Throws common::ContractError
  /// when the socket cannot be bound (stale path, name too long, ...).
  /// The handler is a TuningServer for a daemon, a fleet::Router for the
  /// arcs_fleetd proxy — the transport is identical either way.
  SocketServer(RequestHandler& handler, std::string path,
               SocketServerOptions options = {});
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Stops the loop, unblocks every worker, joins them, unlinks the
  /// socket path. Idempotent.
  void stop();

  const std::string& path() const { return path_; }

  /// Requests rejected by queue backpressure (answered Overloaded).
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  /// Connections currently open (loop-thread gauge; racy reads fine).
  std::size_t connections() const {
    return connections_now_.load(std::memory_order_relaxed);
  }
  /// Connections closed by the idle sweep.
  std::uint64_t timed_out_connections() const {
    return timed_out_.load(std::memory_order_relaxed);
  }
  /// Times a connection's reads were paused by write-buffer backpressure.
  std::uint64_t suspended_reads() const {
    return suspended_reads_.load(std::memory_order_relaxed);
  }
  /// Connections dropped for unrecoverable framing corruption.
  std::uint64_t corrupt_connections() const {
    return corrupt_conns_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// All per-connection state; touched only by the loop thread.
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    FrameDecoder decoder;
    std::string write_buf;     ///< encoded frames awaiting the socket
    std::size_t write_pos = 0;
    std::size_t inflight = 0;  ///< requests at the worker pool
    bool reading = true;       ///< EPOLLIN currently armed
    bool want_write = false;   ///< EPOLLOUT currently armed
    bool corrupt = false;      ///< close once write_buf drains
    Clock::time_point last_activity{};
  };
  struct Work {
    std::uint64_t conn_id = 0;
    Request request;
  };
  struct Completion {
    std::uint64_t conn_id = 0;
    std::string payload;  ///< response JSON, not yet framed
  };

  void loop();
  void worker_loop(std::size_t index);
  void accept_ready();
  void read_ready(Connection& conn);
  void write_ready(Connection& conn);
  void handle_frame(Connection& conn, const std::string& frame);
  void enqueue_response(Connection& conn, const Response& response);
  void enqueue_payload(Connection& conn, std::string_view payload);
  void flush(Connection& conn);
  void update_events(Connection& conn);
  void close_connection(std::uint64_t id);
  void drain_completions();
  void sweep_idle();
  void wake();

  RequestHandler& server_;
  std::string path_;
  SocketServerOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  exec::BoundedMpmcQueue<Work> queue_;
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::size_t> connections_now_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> suspended_reads_{0};
  std::atomic<std::uint64_t> corrupt_conns_{0};

  // Loop-thread-only state (no lock: single owner).
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_ = 2;  // 0 = listen fd, 1 = wake fd

  // The one lock in the transport: the worker→loop completion handoff.
  analysis::Mutex completions_mu_{
      "serve/completions", analysis::sync::rank::kServeCompletions};
  std::vector<Completion> completions_;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
};

/// Thrown when a SocketClient cannot reach its daemon. Carries the
/// connect() errno so callers can distinguish a missing socket path
/// (ENOENT — the daemon was never started or uses another path) from a
/// refused connection (ECONNREFUSED — a stale socket file with no
/// daemon behind it) and exit with distinct codes.
class ConnectError : public common::ContractError {
 public:
  ConnectError(const std::string& message, int code)
      : common::ContractError(message), code_(code) {}
  /// The errno from ::connect (ENOENT, ECONNREFUSED, ...).
  int code() const { return code_; }

 private:
  int code_;
};

/// Blocking client over one connection; call() is mutex-serialized so a
/// single SocketClient may be shared (e.g. by the nodes of run_job).
class SocketClient : public Client {
 public:
  /// Connects immediately; throws serve::ConnectError on failure.
  explicit SocketClient(const std::string& path);
  ~SocketClient() override;

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  /// Returns Status::Error (and sets transport_failed()) when the
  /// connection breaks or the peer answers gibberish.
  Response call(const Request& request) override;

  /// Drops the (possibly broken) connection and dials the daemon again.
  /// False when the peer is still unreachable. A fleet router calls this
  /// before probing an endpoint it marked dead.
  bool reopen() override;

 private:
  int fd_ = -1;
  std::string path_;
  // Held across the full call() round trip by design (one request in
  // flight per connection); allowlisted for blocking-while-held.
  analysis::Mutex mu_{"serve/client", analysis::sync::rank::kServeClient,
                      analysis::sync::kAllowBlockingWhileHeld};
};

}  // namespace arcs::serve
