// Unix-domain socket transport for the tuning service.
//
// SocketServer owns the listening socket of a harmonyd daemon. One
// acceptor thread admits connections; each connection gets a reader
// thread that decodes frames into Requests and pushes them onto a
// BoundedMpmcQueue shared by a fixed worker pool — the queue IS the
// admission control: when the pool is `queue_capacity` requests behind,
// try_push fails and the reader answers Overloaded immediately instead
// of letting the backlog grow without bound. Workers may block inside
// TuningServer::handle (Get with wait_ms), which is why dispatch is
// decoupled from reading: a blocked worker never stops other
// connections' frames from being read or rejected.
//
// Responses are written by whichever thread produced them, serialized
// per connection by a write mutex (reader-side Overloaded replies and
// worker replies interleave safely).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/sync.hpp"
#include "exec/queue.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace arcs::serve {

struct SocketServerOptions {
  std::size_t workers = 4;
  /// Dispatch-queue depth; the backpressure threshold.
  std::size_t queue_capacity = 128;
};

class SocketServer {
 public:
  /// Binds and starts serving immediately. Throws common::ContractError
  /// when the socket cannot be bound (stale path, name too long, ...).
  SocketServer(TuningServer& server, std::string path,
               SocketServerOptions options = {});
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Stops accepting, unblocks every thread, joins them, unlinks the
  /// socket path. Idempotent.
  void stop();

  const std::string& path() const { return path_; }

  /// Requests rejected by queue backpressure (reader-side Overloaded).
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    // Held across write_frame() by design: whole-frame writes are the
    // interleaving guarantee. The allowlist flag records that intent.
    analysis::Mutex write_mu{
        "serve/conn_write", analysis::sync::rank::kServeConnWrite,
        analysis::sync::kAllowBlockingWhileHeld};
  };
  struct Work {
    std::shared_ptr<Connection> conn;
    Request request;
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void worker_loop(std::size_t index);
  void send_response(Connection& conn, const Response& response);

  TuningServer& server_;
  std::string path_;
  SocketServerOptions options_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  exec::BoundedMpmcQueue<Work> queue_;
  std::atomic<std::uint64_t> rejected_{0};

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  analysis::Mutex conns_mu_{"serve/conns",
                            analysis::sync::rank::kServeConns};
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> readers_;
};

/// Blocking client over one connection; call() is mutex-serialized so a
/// single SocketClient may be shared (e.g. by the nodes of run_job).
class SocketClient : public Client {
 public:
  /// Connects immediately; throws common::ContractError on failure.
  explicit SocketClient(const std::string& path);
  ~SocketClient() override;

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  /// Returns Status::Error (and sets transport_failed()) when the
  /// connection breaks or the peer answers gibberish.
  Response call(const Request& request) override;

 private:
  int fd_ = -1;
  // Held across the full call() round trip by design (one request in
  // flight per connection); allowlisted for blocking-while-held.
  analysis::Mutex mu_{"serve/client", analysis::sync::rank::kServeClient,
                      analysis::sync::kAllowBlockingWhileHeld};
};

}  // namespace arcs::serve
