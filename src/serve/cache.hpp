// Shared cross-run decision cache.
//
// The server-side analogue of the ARCS history file: finished searches
// deposit their best configuration here keyed by the full HistoryKey, and
// every later request for the same (app, machine, cap, workload, region)
// is a lock-cheap cache hit instead of a repeated search — the paper's
// "saved values can be used instead of repeating the search process",
// lifted from one process's files to a service shared by many clients.
//
// Concurrency: the key space is split across `shards` independently
// locked LRU lists (shard = stable hash of the key), so concurrent
// hit-path readers on different keys do not serialize on one mutex.
// Capacity is enforced per shard (capacity/shards each) with
// least-recently-used eviction; get() counts as a use.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "analysis/sync.hpp"
#include "core/history.hpp"

namespace arcs::serve {

struct CacheOptions {
  /// Total decisions kept (split evenly across shards; at least one per
  /// shard). 0 is invalid.
  std::size_t capacity = 1024;
  /// Lock shards. Use 1 in tests that assert exact eviction order.
  std::size_t shards = 8;
};

/// A finished search result, as served to clients.
struct CachedDecision {
  somp::LoopConfig config;
  double best_value = 0.0;
  std::uint64_t evaluations = 0;
  /// A model prediction published before any measurement: served to keep
  /// cold-start clients off the search critical path, replaced in place
  /// by the final decision when the refinement search retires. Never
  /// included in snapshot() — predictions must not masquerade as
  /// measured bests in a saved history file.
  bool provisional = false;
};

class DecisionCache {
 public:
  explicit DecisionCache(CacheOptions options = {});

  /// Lookup; promotes the entry to most-recently-used.
  std::optional<CachedDecision> get(const HistoryKey& key);

  /// Insert or overwrite; may evict the shard's least-recently-used entry.
  void put(const HistoryKey& key, const CachedDecision& decision);

  std::size_t size() const;
  /// Entries currently provisional (model predictions awaiting a search).
  std::size_t provisional_count() const;
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Bulk-seed from a history store (e.g. the daemon's --history file).
  void load(const HistoryStore& store);

  /// Every *final* cached decision as a HistoryStore (for Save /
  /// persistence). Provisional predictions are skipped.
  HistoryStore snapshot() const;

  /// Stable (process-independent) shard hash, exposed for tests.
  static std::uint64_t key_hash(const HistoryKey& key);

 private:
  struct Shard {
    // One class for all shards: shard_of() picks exactly one shard per
    // operation and publish-then-retire touches one at a time under the
    // sessions lock, so shard locks never nest with each other.
    mutable analysis::Mutex mu{"serve/cache_shard",
                               analysis::sync::rank::kServeCacheShard};
    /// Front = most recently used.
    std::list<std::pair<HistoryKey, CachedDecision>> lru;
    std::map<HistoryKey,
             std::list<std::pair<HistoryKey, CachedDecision>>::iterator>
        index;
  };

  Shard& shard_of(const HistoryKey& key);
  const Shard& shard_of(const HistoryKey& key) const;

  CacheOptions options_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace arcs::serve
