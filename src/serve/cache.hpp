// Shared cross-run decision cache.
//
// The server-side analogue of the ARCS history file: finished searches
// deposit their best configuration here keyed by the full HistoryKey, and
// every later request for the same (app, machine, cap, workload, region)
// is a cache hit instead of a repeated search — the paper's "saved values
// can be used instead of repeating the search process", lifted from one
// process's files to a service shared by many clients.
//
// Concurrency: the key space is split across `shards`, each an
// open-addressed slot table with a **per-slot seqlock**, so the hit path
// takes NO locks at all:
//
//   writer (under the shard's ranked analysis::Mutex):
//     seq.fetch_add(1, relaxed)            // odd: entry is being mutated
//     atomic_thread_fence(release)
//     ... field stores, all relaxed ...
//     seq.fetch_add(1, release)            // even again: entry is stable
//
//   reader (no lock):
//     s0 = seq.load(acquire)
//     ... field loads, all relaxed ...
//     atomic_thread_fence(acquire)
//     s1 = seq.load(relaxed)
//     consistent iff s0 == s1 && s0 is even — otherwise retry
//
// Every slot field a reader touches is a std::atomic, so the protocol is
// data-race-free by construction (TSan-clean, no UB); torn reads are
// *detected* by the sequence sandwich and retried. After a bounded number
// of unstable probes the reader falls back to a locked lookup, so progress
// is guaranteed even under a pathological writer storm. Writers — put(),
// load(), eviction, the provisional→final upgrade — all serialize on the
// shard's `analysis::Mutex` (rank kServeCacheShard), which keeps the
// entire write side under the ARCS_SYNC_CHECK lock-order verifier.
//
// Entries are matched lock-free by a 128-bit key fingerprint (two
// independent 64-bit hashes); the full HistoryKey string is stored per
// slot but only ever touched under the shard mutex (writers compare it
// exactly, so two keys colliding in 64 bits still occupy distinct slots).
// Probes terminate at Empty slots; eviction leaves Tombstones, which
// inserts reuse, so a concurrent reader's probe path is never cut short.
//
// Eviction is exact LRU per shard: every get() stamps the slot with a
// per-shard monotonic tick, and eviction removes the slot with the
// smallest stamp. Capacity is enforced per shard (capacity/shards each).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "analysis/sync.hpp"
#include "core/history.hpp"

namespace arcs::serve {

struct CacheOptions {
  /// Total decisions kept (split evenly across shards; at least one per
  /// shard). 0 is invalid.
  std::size_t capacity = 1024;
  /// Shards. Use 1 in tests that assert exact eviction order.
  std::size_t shards = 8;
};

/// A finished search result, as served to clients.
struct CachedDecision {
  somp::LoopConfig config;
  double best_value = 0.0;
  std::uint64_t evaluations = 0;
  /// A model prediction published before any measurement: served to keep
  /// cold-start clients off the search critical path, replaced in place
  /// by the final decision when the refinement search retires. Never
  /// included in snapshot() — predictions must not masquerade as
  /// measured bests in a saved history file.
  bool provisional = false;
};

class DecisionCache {
 public:
  explicit DecisionCache(CacheOptions options = {});

  /// Lock-free lookup; stamps the entry most-recently-used.
  std::optional<CachedDecision> get(const HistoryKey& key);

  /// Insert or overwrite; may evict the shard's least-recently-used
  /// entry. Takes the shard's mutex (the certified write side).
  void put(const HistoryKey& key, const CachedDecision& decision);

  /// Drops one key (fleet invalidation after a budget renegotiation).
  /// Tombstones the slot like eviction, so concurrent lock-free probes
  /// keep their chains. Returns whether the key was present.
  bool erase(const HistoryKey& key);

  std::size_t size() const;
  /// Entries currently provisional (model predictions awaiting a search).
  std::size_t provisional_count() const;
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Lock-free probes that observed a torn slot and went around again
  /// (monitoring; the locked fallback triggers after kReadRetries).
  std::uint64_t read_retries() const {
    return read_retries_.load(std::memory_order_relaxed);
  }

  /// Bulk-seed from a history store (e.g. the daemon's --history file).
  void load(const HistoryStore& store);

  /// Every *final* cached decision as a HistoryStore (for Save /
  /// persistence). Provisional predictions are skipped.
  HistoryStore snapshot() const;

  /// snapshot() restricted to entries whose key_hash lies in the
  /// inclusive range [lo, hi]; lo > hi wraps through UINT64_MAX (a
  /// consistent-hash ring arc). Backs the fleet Snapshot op.
  HistoryStore snapshot_range(std::uint64_t lo, std::uint64_t hi) const;

  /// Stable (process-independent) shard hash, exposed for tests.
  static std::uint64_t key_hash(const HistoryKey& key);
  /// Second, independent fingerprint half: lock-free probes match on the
  /// 128-bit (key_hash, key_hash2) pair.
  static std::uint64_t key_hash2(const HistoryKey& key);

  /// Unstable-probe attempts before a reader falls back to the lock.
  static constexpr int kReadRetries = 8;

 private:
  enum : std::uint8_t { kEmpty = 0, kTombstone = 1, kFull = 2 };

  /// One open-addressing slot. Everything a lock-free reader touches is
  /// atomic; `key` is the exact-match/eviction record and is only ever
  /// accessed under the shard mutex.
  struct Slot {
    std::atomic<std::uint32_t> seq{0};
    std::atomic<std::uint8_t> state{kEmpty};
    std::atomic<std::uint8_t> provisional{0};
    std::atomic<std::uint64_t> hash_a{0};
    std::atomic<std::uint64_t> hash_b{0};
    // somp::LoopConfig, exploded into atomic PODs.
    std::atomic<std::int32_t> threads{0};
    std::atomic<std::int32_t> sched_kind{0};
    std::atomic<std::int64_t> chunk{0};
    std::atomic<std::int64_t> frequency_mhz{0};
    std::atomic<std::int32_t> placement{0};
    std::atomic<double> best_value{0.0};
    std::atomic<std::uint64_t> evaluations{0};
    /// LRU stamp (per-shard tick); relaxed — a stale stamp only skews
    /// eviction order, never correctness.
    std::atomic<std::uint64_t> last_used{0};
    HistoryKey key;  ///< shard-mutex only
  };

  struct Shard {
    // One class for all shards: shard_of() picks exactly one shard per
    // operation and publish-then-retire touches one at a time under the
    // sessions lock, so shard locks never nest with each other.
    mutable analysis::Mutex mu{"serve/cache_shard",
                               analysis::sync::rank::kServeCacheShard};
    std::vector<Slot> slots;  ///< power-of-two, fixed after construction
    std::atomic<std::uint64_t> tick{0};   ///< LRU clock
    std::atomic<std::size_t> count{0};    ///< kFull slots
  };

  enum class ProbeResult { Hit, Miss, Unstable };

  Shard& shard_of(std::uint64_t hash_a) {
    return *shards_[hash_a % shards_.size()];
  }
  const Shard& shard_of(std::uint64_t hash_a) const {
    return *shards_[hash_a % shards_.size()];
  }

  /// One full lock-free probe round. Unstable = a torn slot was seen.
  ProbeResult probe_lockfree(Shard& shard, std::uint64_t hash_a,
                             std::uint64_t hash_b,
                             CachedDecision& out) const;
  /// Exact lookup under the shard mutex (fallback + writer path).
  /// Returns the matching slot or nullptr.
  Slot* find_locked(Shard& shard, const HistoryKey& key,
                    std::uint64_t hash_a, std::uint64_t hash_b) const;
  /// Seqlock-writes `decision` into `slot` (shard mutex held).
  void store_slot(Shard& shard, Slot& slot, const HistoryKey& key,
                  std::uint64_t hash_a, std::uint64_t hash_b,
                  const CachedDecision& decision);
  /// Tombstones the least-recently-used kFull slot (shard mutex held).
  void evict_lru(Shard& shard);

  static CachedDecision decision_from(
      std::int32_t threads, std::int32_t sched_kind, std::int64_t chunk,
      std::int64_t frequency_mhz, std::int32_t placement, double best_value,
      std::uint64_t evaluations, std::uint8_t provisional);

  CacheOptions options_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> evictions_{0};
  mutable std::atomic<std::uint64_t> read_retries_{0};
};

}  // namespace arcs::serve
