#include "serve/cache.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace arcs::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  h ^= 0x7c;  // field separator so ("ab","c") != ("a","bc")
  h *= kFnvPrime;
}

}  // namespace

std::uint64_t DecisionCache::key_hash(const HistoryKey& key) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, key.app);
  fnv_mix(h, key.machine);
  fnv_mix(h, key.workload);
  fnv_mix(h, key.region);
  // Deciwatt-quantized cap so float formatting noise cannot split shards.
  const auto cap = static_cast<std::uint64_t>(
      std::llround(key.power_cap * 10.0));
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (cap >> shift) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

DecisionCache::DecisionCache(CacheOptions options)
    : options_(options) {
  ARCS_CHECK_MSG(options_.capacity > 0, "cache capacity must be positive");
  ARCS_CHECK_MSG(options_.shards > 0, "cache needs at least one shard");
  per_shard_capacity_ =
      std::max<std::size_t>(1, options_.capacity / options_.shards);
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

DecisionCache::Shard& DecisionCache::shard_of(const HistoryKey& key) {
  return *shards_[key_hash(key) % shards_.size()];
}

const DecisionCache::Shard& DecisionCache::shard_of(
    const HistoryKey& key) const {
  return *shards_[key_hash(key) % shards_.size()];
}

std::optional<CachedDecision> DecisionCache::get(const HistoryKey& key) {
  Shard& shard = shard_of(key);
  const std::lock_guard<analysis::Mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return std::nullopt;
  if (it->second != shard.lru.begin())
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void DecisionCache::put(const HistoryKey& key,
                        const CachedDecision& decision) {
  Shard& shard = shard_of(key);
  const std::lock_guard<analysis::Mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = decision;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, decision);
  shard.index.emplace(key, shard.lru.begin());
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t DecisionCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<analysis::Mutex> lock(shard->mu);
    n += shard->lru.size();
  }
  return n;
}

std::size_t DecisionCache::provisional_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<analysis::Mutex> lock(shard->mu);
    for (const auto& [key, decision] : shard->lru)
      if (decision.provisional) ++n;
  }
  return n;
}

void DecisionCache::load(const HistoryStore& store) {
  for (const auto& [key, entry] : store.entries()) {
    CachedDecision decision;
    decision.config = entry.config;
    decision.best_value = entry.best_value;
    decision.evaluations = entry.evaluations;
    put(key, decision);
  }
}

HistoryStore DecisionCache::snapshot() const {
  HistoryStore store;
  for (const auto& shard : shards_) {
    const std::lock_guard<analysis::Mutex> lock(shard->mu);
    for (const auto& [key, decision] : shard->lru) {
      if (decision.provisional) continue;
      HistoryEntry entry;
      entry.config = decision.config;
      entry.best_value = decision.best_value;
      entry.evaluations = decision.evaluations;
      store.put(key, entry);
    }
  }
  return store;
}

}  // namespace arcs::serve
