#include "serve/cache.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace arcs::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
// Second fingerprint: different basis, different (odd) multiplier,
// different separator — an independent function, not a reparameterized
// copy. A 64-bit collision between same-length keys in key_hash does not
// imply one here, so the 128-bit pair is collision-safe in practice.
constexpr std::uint64_t kAltOffset = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kAltPrime = 0x00000100000001b5ull;

void fnv_mix(std::uint64_t& h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  h ^= 0x7c;  // field separator so ("ab","c") != ("a","bc")
  h *= kFnvPrime;
}

void alt_mix(std::uint64_t& h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kAltPrime;
  }
  h ^= 0x3b;
  h *= kAltPrime;
}

/// Deciwatt-quantized cap so float formatting noise cannot split shards.
std::uint64_t quantized_cap(const HistoryKey& key) {
  return static_cast<std::uint64_t>(std::llround(key.power_cap * 10.0));
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::uint64_t DecisionCache::key_hash(const HistoryKey& key) {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, key.app);
  fnv_mix(h, key.machine);
  fnv_mix(h, key.workload);
  fnv_mix(h, key.region);
  const std::uint64_t cap = quantized_cap(key);
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (cap >> shift) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t DecisionCache::key_hash2(const HistoryKey& key) {
  std::uint64_t h = kAltOffset;
  alt_mix(h, key.app);
  alt_mix(h, key.machine);
  alt_mix(h, key.workload);
  alt_mix(h, key.region);
  const std::uint64_t cap = quantized_cap(key);
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (cap >> shift) & 0xff;
    h *= kAltPrime;
  }
  // Avalanche so low-entropy tails still differ in every bit.
  return common::hash64(h);
}

DecisionCache::DecisionCache(CacheOptions options) : options_(options) {
  ARCS_CHECK_MSG(options_.capacity > 0, "cache capacity must be positive");
  ARCS_CHECK_MSG(options_.shards > 0, "cache needs at least one shard");
  per_shard_capacity_ =
      std::max<std::size_t>(1, options_.capacity / options_.shards);
  // <= 50% load factor keeps lock-free probes short; power-of-two size
  // makes the probe stride a mask instead of a division.
  const std::size_t slot_count =
      next_pow2(std::max<std::size_t>(8, 2 * per_shard_capacity_));
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->slots = std::vector<Slot>(slot_count);
    shards_.push_back(std::move(shard));
  }
}

CachedDecision DecisionCache::decision_from(
    std::int32_t threads, std::int32_t sched_kind, std::int64_t chunk,
    std::int64_t frequency_mhz, std::int32_t placement, double best_value,
    std::uint64_t evaluations, std::uint8_t provisional) {
  CachedDecision decision;
  decision.config.num_threads = threads;
  decision.config.schedule.kind =
      static_cast<somp::ScheduleKind>(sched_kind);
  decision.config.schedule.chunk = chunk;
  decision.config.frequency_mhz = frequency_mhz;
  decision.config.placement = static_cast<sim::PlacementPolicy>(placement);
  decision.best_value = best_value;
  decision.evaluations = evaluations;
  decision.provisional = provisional != 0;
  return decision;
}

DecisionCache::ProbeResult DecisionCache::probe_lockfree(
    Shard& shard, std::uint64_t hash_a, std::uint64_t hash_b,
    CachedDecision& out) const {
  const std::size_t mask = shard.slots.size() - 1;
  for (std::size_t i = 0; i <= mask; ++i) {
    Slot& slot = shard.slots[(hash_a + i) & mask];
    // Seqlock read: acquire the sequence, relaxed-load every field, then
    // re-check the sequence behind an acquire fence. A mismatch or an odd
    // value means a writer was mid-mutation — the whole probe restarts,
    // because a slot changing state can also change where the key lives.
    const std::uint32_t s0 = slot.seq.load(std::memory_order_acquire);
    const std::uint8_t state = slot.state.load(std::memory_order_relaxed);
    const std::uint64_t a = slot.hash_a.load(std::memory_order_relaxed);
    const std::uint64_t b = slot.hash_b.load(std::memory_order_relaxed);
    const std::int32_t threads =
        slot.threads.load(std::memory_order_relaxed);
    const std::int32_t sched_kind =
        slot.sched_kind.load(std::memory_order_relaxed);
    const std::int64_t chunk = slot.chunk.load(std::memory_order_relaxed);
    const std::int64_t frequency =
        slot.frequency_mhz.load(std::memory_order_relaxed);
    const std::int32_t placement =
        slot.placement.load(std::memory_order_relaxed);
    const double best_value =
        slot.best_value.load(std::memory_order_relaxed);
    const std::uint64_t evaluations =
        slot.evaluations.load(std::memory_order_relaxed);
    const std::uint8_t provisional =
        slot.provisional.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint32_t s1 = slot.seq.load(std::memory_order_relaxed);
    if (s0 != s1 || (s0 & 1u) != 0) return ProbeResult::Unstable;
    if (state == kEmpty) return ProbeResult::Miss;  // probe chain ends
    if (state == kFull && a == hash_a && b == hash_b) {
      // Exact-LRU stamp. A relaxed RMW on the shard tick is the one
      // shared line the hit path touches — orders of magnitude cheaper
      // than the old mutex+list splice, and split across shards.
      slot.last_used.store(
          1 + shard.tick.fetch_add(1, std::memory_order_relaxed),
          std::memory_order_relaxed);
      out = decision_from(threads, sched_kind, chunk, frequency, placement,
                          best_value, evaluations, provisional);
      return ProbeResult::Hit;
    }
    // Tombstone or a different key: keep probing.
  }
  return ProbeResult::Miss;  // table fully scanned
}

DecisionCache::Slot* DecisionCache::find_locked(
    Shard& shard, const HistoryKey& key, std::uint64_t hash_a,
    std::uint64_t hash_b) const {
  const std::size_t mask = shard.slots.size() - 1;
  for (std::size_t i = 0; i <= mask; ++i) {
    Slot& slot = shard.slots[(hash_a + i) & mask];
    const std::uint8_t state = slot.state.load(std::memory_order_relaxed);
    if (state == kEmpty) return nullptr;
    if (state == kFull &&
        slot.hash_a.load(std::memory_order_relaxed) == hash_a &&
        slot.hash_b.load(std::memory_order_relaxed) == hash_b &&
        slot.key == key)
      return &slot;
  }
  return nullptr;
}

std::optional<CachedDecision> DecisionCache::get(const HistoryKey& key) {
  const std::uint64_t hash_a = key_hash(key);
  const std::uint64_t hash_b = key_hash2(key);
  Shard& shard = shard_of(hash_a);
  CachedDecision decision;
  for (int attempt = 0; attempt < kReadRetries; ++attempt) {
    switch (probe_lockfree(shard, hash_a, hash_b, decision)) {
      case ProbeResult::Hit:
        return decision;
      case ProbeResult::Miss:
        return std::nullopt;
      case ProbeResult::Unstable:
        read_retries_.fetch_add(1, std::memory_order_relaxed);
        break;  // go around
    }
  }
  // Writer storm: fall back to the locked exact lookup so readers are
  // never livelocked.
  const std::lock_guard<analysis::Mutex> lock(shard.mu);
  Slot* slot = find_locked(shard, key, hash_a, hash_b);
  if (slot == nullptr) return std::nullopt;
  slot->last_used.store(
      1 + shard.tick.fetch_add(1, std::memory_order_relaxed),
      std::memory_order_relaxed);
  return decision_from(slot->threads.load(std::memory_order_relaxed),
                       slot->sched_kind.load(std::memory_order_relaxed),
                       slot->chunk.load(std::memory_order_relaxed),
                       slot->frequency_mhz.load(std::memory_order_relaxed),
                       slot->placement.load(std::memory_order_relaxed),
                       slot->best_value.load(std::memory_order_relaxed),
                       slot->evaluations.load(std::memory_order_relaxed),
                       slot->provisional.load(std::memory_order_relaxed));
}

void DecisionCache::store_slot(Shard& shard, Slot& slot,
                               const HistoryKey& key, std::uint64_t hash_a,
                               std::uint64_t hash_b,
                               const CachedDecision& decision) {
  const bool inserting = slot.state.load(std::memory_order_relaxed) != kFull;
  slot.key = key;  // mutex-only field; never read lock-free
  // Seqlock write: odd sequence + release fence open the critical
  // section, the final release store closes it.
  slot.seq.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.state.store(kFull, std::memory_order_relaxed);
  slot.hash_a.store(hash_a, std::memory_order_relaxed);
  slot.hash_b.store(hash_b, std::memory_order_relaxed);
  slot.threads.store(decision.config.num_threads,
                     std::memory_order_relaxed);
  slot.sched_kind.store(
      static_cast<std::int32_t>(decision.config.schedule.kind),
      std::memory_order_relaxed);
  slot.chunk.store(decision.config.schedule.chunk,
                   std::memory_order_relaxed);
  slot.frequency_mhz.store(decision.config.frequency_mhz,
                           std::memory_order_relaxed);
  slot.placement.store(static_cast<std::int32_t>(decision.config.placement),
                       std::memory_order_relaxed);
  slot.best_value.store(decision.best_value, std::memory_order_relaxed);
  slot.evaluations.store(decision.evaluations, std::memory_order_relaxed);
  slot.provisional.store(decision.provisional ? 1 : 0,
                         std::memory_order_relaxed);
  slot.seq.fetch_add(1, std::memory_order_release);
  slot.last_used.store(
      1 + shard.tick.fetch_add(1, std::memory_order_relaxed),
      std::memory_order_relaxed);
  if (inserting) shard.count.fetch_add(1, std::memory_order_relaxed);
}

void DecisionCache::evict_lru(Shard& shard) {
  Slot* victim = nullptr;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (Slot& slot : shard.slots) {
    if (slot.state.load(std::memory_order_relaxed) != kFull) continue;
    const std::uint64_t used =
        slot.last_used.load(std::memory_order_relaxed);
    if (victim == nullptr || used < oldest) {
      victim = &slot;
      oldest = used;
    }
  }
  if (victim == nullptr) return;
  victim->seq.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  // Tombstone, never Empty: concurrent readers probing *past* this slot
  // must not have their chain cut mid-scan.
  victim->state.store(kTombstone, std::memory_order_relaxed);
  victim->seq.fetch_add(1, std::memory_order_release);
  victim->key = HistoryKey{};
  shard.count.fetch_sub(1, std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

void DecisionCache::put(const HistoryKey& key,
                        const CachedDecision& decision) {
  const std::uint64_t hash_a = key_hash(key);
  const std::uint64_t hash_b = key_hash2(key);
  Shard& shard = shard_of(hash_a);
  const std::lock_guard<analysis::Mutex> lock(shard.mu);
  if (Slot* existing = find_locked(shard, key, hash_a, hash_b)) {
    store_slot(shard, *existing, key, hash_a, hash_b, decision);
    return;
  }
  if (shard.count.load(std::memory_order_relaxed) >= per_shard_capacity_)
    evict_lru(shard);
  // First tombstone on the probe path is reused; otherwise the Empty
  // that terminates it. The table is at most half full, so a free slot
  // always exists.
  const std::size_t mask = shard.slots.size() - 1;
  Slot* dest = nullptr;
  for (std::size_t i = 0; i <= mask; ++i) {
    Slot& slot = shard.slots[(hash_a + i) & mask];
    if (slot.state.load(std::memory_order_relaxed) == kFull) continue;
    dest = &slot;  // first tombstone or the terminating empty
    break;
  }
  ARCS_CHECK_MSG(dest != nullptr, "decision cache shard has no free slot");
  store_slot(shard, *dest, key, hash_a, hash_b, decision);
}

bool DecisionCache::erase(const HistoryKey& key) {
  const std::uint64_t hash_a = key_hash(key);
  const std::uint64_t hash_b = key_hash2(key);
  Shard& shard = shard_of(hash_a);
  const std::lock_guard<analysis::Mutex> lock(shard.mu);
  Slot* slot = find_locked(shard, key, hash_a, hash_b);
  if (slot == nullptr) return false;
  slot->seq.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  // Tombstone, never Empty: concurrent readers probing past this slot
  // must not have their chain cut mid-scan (same rule as eviction).
  slot->state.store(kTombstone, std::memory_order_relaxed);
  slot->seq.fetch_add(1, std::memory_order_release);
  slot->key = HistoryKey{};
  shard.count.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

std::size_t DecisionCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_)
    n += shard->count.load(std::memory_order_relaxed);
  return n;
}

std::size_t DecisionCache::provisional_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<analysis::Mutex> lock(shard->mu);
    for (const Slot& slot : shard->slots)
      if (slot.state.load(std::memory_order_relaxed) == kFull &&
          slot.provisional.load(std::memory_order_relaxed) != 0)
        ++n;
  }
  return n;
}

void DecisionCache::load(const HistoryStore& store) {
  for (const auto& [key, entry] : store.entries()) {
    CachedDecision decision;
    decision.config = entry.config;
    decision.best_value = entry.best_value;
    decision.evaluations = entry.evaluations;
    put(key, decision);
  }
}

HistoryStore DecisionCache::snapshot() const {
  return snapshot_range(0, ~std::uint64_t{0});
}

HistoryStore DecisionCache::snapshot_range(std::uint64_t lo,
                                           std::uint64_t hi) const {
  // Wrapping inclusive membership: a ring arc may straddle UINT64_MAX.
  const auto in_range = [lo, hi](std::uint64_t h) {
    return lo <= hi ? (h >= lo && h <= hi) : (h >= lo || h <= hi);
  };
  HistoryStore store;
  for (const auto& shard : shards_) {
    const std::lock_guard<analysis::Mutex> lock(shard->mu);
    for (const Slot& slot : shard->slots) {
      if (slot.state.load(std::memory_order_relaxed) != kFull) continue;
      if (slot.provisional.load(std::memory_order_relaxed) != 0) continue;
      if (!in_range(slot.hash_a.load(std::memory_order_relaxed))) continue;
      HistoryEntry entry;
      const CachedDecision decision = decision_from(
          slot.threads.load(std::memory_order_relaxed),
          slot.sched_kind.load(std::memory_order_relaxed),
          slot.chunk.load(std::memory_order_relaxed),
          slot.frequency_mhz.load(std::memory_order_relaxed),
          slot.placement.load(std::memory_order_relaxed),
          slot.best_value.load(std::memory_order_relaxed),
          slot.evaluations.load(std::memory_order_relaxed), 0);
      entry.config = decision.config;
      entry.best_value = decision.best_value;
      entry.evaluations = decision.evaluations;
      store.put(slot.key, entry);
    }
  }
  return store;
}

}  // namespace arcs::serve
