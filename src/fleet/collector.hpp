// fleet::Collector — the fleet observability plane's scrape loop.
//
// Periodically scrapes every topology node's `metrics` op through the
// Router (Router::call_endpoint, so a scrape failure feeds the same
// health/backoff state the routing paths consult), merges the per-node
// documents into node-labelled retained series ("<node>/serve/hits",
// "<node>/up", ...), computes windowed fleet indicators — p99 serve
// latency from exact merged histogram deltas, error rate, cache hit
// ratio, power-cap violation seconds — and feeds them through the SLO
// engine. The aggregated picture is served as the `fleet_status` op
// (install via Router::set_status_provider) and consumed by arcs_top.
//
// Clocking: every entry point takes the caller's timestamp (seconds on
// any monotone clock). arcs_fleetd ticks with steady-clock seconds;
// tests drive a synthetic clock and get fully deterministic series,
// windows, and alert timing.
//
// Locking: scrape I/O happens with no collector lock held (the Router
// already releases its topology lock before endpoint I/O); only the
// ingest/evaluate/read phases serialize on mu_ (rank kFleetCollector,
// below every telemetry rank, so holding it while recording into the
// TimeSeriesStore nests in order).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/sync.hpp"
#include "common/json.hpp"
#include "fleet/router.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/timeseries.hpp"

namespace arcs::fleet {

struct CollectorOptions {
  /// Seconds between scrapes (tick() spacing; <= 0 disables tick()).
  double scrape_interval_s = 1.0;
  /// Rolling window for fleet indicators (p99, error rate, hit ratio).
  double window_s = 10.0;
  /// Retention geometry for every per-node and fleet series.
  telemetry::TimeSeriesOptions series;
  /// Hysteresis: with the default 2/2, a killed node alerts on the
  /// second consecutive failed scrape — within the 3-scrape budget.
  telemetry::SloOptions slo;

  // SLO targets; a target <= 0 disables that rule.
  double p99_target_us = 50'000.0;     ///< fleet p99 serve latency
  double error_rate_target = 0.05;     ///< timeouts+overloaded / requests
  double hit_ratio_floor = 0.0;        ///< off by default (cold fleets)
  /// Seconds above the power cap tolerated per window.
  double power_violation_budget_s = 0.0;
  /// Windowed requests below which ratio rules (error rate, hit ratio)
  /// are skipped — a near-idle window is noise, not an SLO breach.
  std::uint64_t min_window_requests = 8;

  // Anomaly detection (robust z-score) over per-node request rate.
  double anomaly_alpha = 0.2;
  double anomaly_z = 4.0;
  std::size_t anomaly_min_samples = 8;
};

class Collector {
 public:
  Collector(Router& router, CollectorOptions options = {});

  /// Scrapes every registered endpoint once at time now_s, ingests the
  /// responses, and evaluates SLO rules. Returns how many endpoints
  /// answered. Thread-safe; I/O runs outside the collector lock.
  std::size_t scrape(double now_s);

  /// scrape(now_s) if at least scrape_interval_s elapsed since the last
  /// one (the fleetd loop calls this every poll tick). Returns true when
  /// a scrape ran.
  bool tick(double now_s);

  /// Records a fleet power sample (watts against the active cap) into
  /// the retained series and the power-cap violation accounting.
  void record_power(double now_s, double watts, double cap_watts);

  /// The aggregated document served by Op::FleetStatus
  /// (schema "arcs-fleet-status/v1"); see docs/OBSERVABILITY.md.
  common::Json fleet_status() const;

  /// Scrapes completed since construction.
  std::uint64_t scrapes() const;

  /// Alerts fired since construction (bench_x17's detection gate).
  std::uint64_t alerts_fired() const;

  const telemetry::TimeSeriesStore& store() const { return store_; }
  const CollectorOptions& options() const { return options_; }

 private:
  struct NodeState {
    bool scrape_ok = false;
    int consecutive_failures = 0;
    double uptime_s = 0;
    std::string version;
    double last_ok_s = 0;
    double requests_total = 0;
    telemetry::AnomalyDetector rate_detector;
  };

  struct Anomaly {
    std::string node;
    std::string metric;
    double value = 0;
    double center = 0;
    double t = 0;
  };

  /// One node's Metrics document into the store; updates NodeState.
  void ingest(const std::string& name, bool ok, const common::Json& doc,
              double now_s);
  void evaluate(double now_s);
  /// Merged hit+miss+predicted latency delta for `prefix` ("<node>" or
  /// all nodes when empty) over [now_s - window_s, now_s].
  telemetry::HistogramSnapshot latency_window(std::string_view node,
                                              double now_s) const;
  double window_sum(const std::string& name, double now_s) const;
  void note_anomaly(Anomaly a);

  Router& router_;
  CollectorOptions options_;
  telemetry::TimeSeriesStore store_;

  mutable analysis::Mutex mu_{"fleet/collector",
                              analysis::sync::rank::kFleetCollector};
  telemetry::SloEngine engine_;                 ///< guarded by mu_
  std::map<std::string, NodeState> nodes_;      ///< guarded by mu_
  std::vector<Anomaly> anomalies_;              ///< guarded by mu_ (cap 32)
  std::uint64_t scrapes_ = 0;                   ///< guarded by mu_
  double last_scrape_s_ = 0;                    ///< guarded by mu_
  bool have_scraped_ = false;                   ///< guarded by mu_
  double power_violation_total_s_ = 0;          ///< guarded by mu_
  double last_power_t_ = 0;                     ///< guarded by mu_
  bool have_power_ = false;                     ///< guarded by mu_
  bool last_power_over_ = false;                ///< guarded by mu_
};

}  // namespace arcs::fleet
