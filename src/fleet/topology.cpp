#include "fleet/topology.hpp"

#include <fstream>
#include <set>
#include <sstream>

#include "common/check.hpp"

namespace arcs::fleet {

namespace {

const common::Json& require(const common::Json& json, const std::string& key) {
  const common::Json* member = json.find(key);
  ARCS_CHECK_MSG(member != nullptr, "fleet topology missing field: " + key);
  return *member;
}

std::string require_string(const common::Json& json, const std::string& key) {
  const common::Json& member = require(json, key);
  ARCS_CHECK_MSG(member.is_string(),
                 "fleet topology field is not a string: " + key);
  return member.as_string();
}

double number_or(const common::Json& json, const std::string& key,
                 double fallback) {
  const common::Json* member = json.find(key);
  if (member == nullptr) return fallback;
  ARCS_CHECK_MSG(member->is_number(),
                 "fleet topology field is not a number: " + key);
  return member->as_number();
}

}  // namespace

void Topology::validate() const {
  ARCS_CHECK_MSG(!endpoints.empty(), "fleet topology has no endpoints");
  ARCS_CHECK_MSG(virtual_nodes > 0,
                 "fleet topology needs virtual_nodes >= 1");
  std::set<std::string> names;
  std::set<std::string> sockets;
  for (const auto& ep : endpoints) {
    ARCS_CHECK_MSG(!ep.name.empty(), "fleet endpoint with an empty name");
    ARCS_CHECK_MSG(!ep.socket.empty(),
                   "fleet endpoint '" + ep.name + "' has no socket path");
    ARCS_CHECK_MSG(names.insert(ep.name).second,
                   "duplicate fleet endpoint name: " + ep.name);
    ARCS_CHECK_MSG(sockets.insert(ep.socket).second,
                   "duplicate fleet endpoint socket: " + ep.socket);
  }
  ARCS_CHECK_MSG(cluster_power_cap >= 0.0,
                 "cluster_power_cap cannot be negative");
}

common::Json Topology::to_json() const {
  common::Json j = common::Json::object();
  j.set("proto", std::string(kTopologyProto));
  j.set("virtual_nodes", virtual_nodes);
  j.set("replicas", replicas);
  j.set("hot_key_threshold", hot_key_threshold);
  j.set("cluster_power_cap", cluster_power_cap);
  common::Json eps = common::Json::array();
  for (const auto& ep : endpoints) {
    common::Json e = common::Json::object();
    e.set("name", ep.name);
    e.set("socket", ep.socket);
    eps.push_back(std::move(e));
  }
  j.set("endpoints", std::move(eps));
  return j;
}

Topology Topology::from_json(const common::Json& json) {
  ARCS_CHECK_MSG(json.is_object(), "fleet topology is not a JSON object");
  const std::string proto = require_string(json, "proto");
  ARCS_CHECK_MSG(proto == kTopologyProto,
                 "fleet topology version skew: got '" + proto + "', want '" +
                     std::string(kTopologyProto) + "'");
  Topology topo;
  topo.virtual_nodes = static_cast<std::size_t>(
      number_or(json, "virtual_nodes", 64.0));
  topo.replicas =
      static_cast<std::size_t>(number_or(json, "replicas", 1.0));
  topo.hot_key_threshold = static_cast<std::uint64_t>(
      number_or(json, "hot_key_threshold", 64.0));
  topo.cluster_power_cap = number_or(json, "cluster_power_cap", 0.0);
  const common::Json& eps = require(json, "endpoints");
  ARCS_CHECK_MSG(eps.is_array(), "fleet topology endpoints is not an array");
  for (const common::Json& e : eps.items()) {
    TopologyEndpoint ep;
    ep.name = require_string(e, "name");
    ep.socket = require_string(e, "socket");
    topo.endpoints.push_back(std::move(ep));
  }
  topo.validate();
  return topo;
}

Topology Topology::load(const std::string& path) {
  std::ifstream in(path);
  ARCS_CHECK_MSG(in.good(), "cannot open fleet topology file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  std::string parse_error;
  const common::Json json = common::Json::parse(text.str(), &parse_error);
  ARCS_CHECK_MSG(!json.is_null(),
                 "bad JSON in fleet topology file " + path + ": " +
                     parse_error);
  return from_json(json);
}

void Topology::save(const std::string& path) const {
  validate();
  std::ofstream out(path, std::ios::trunc);
  ARCS_CHECK_MSG(out.good(), "cannot write fleet topology file: " + path);
  out << to_json().dump(2) << "\n";
}

}  // namespace arcs::fleet
