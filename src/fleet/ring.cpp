#include "fleet/ring.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace arcs::fleet {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv(std::string_view s) {
  std::uint64_t h = kFnvOffset;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t Ring::point_hash(const std::string& name, std::size_t vnode) {
  // Avalanched combine of the name hash and the vnode index: point
  // positions depend only on the pair, never on membership order.
  return common::hash_combine(fnv(name),
                              static_cast<std::uint64_t>(vnode) + 1);
}

Ring::Ring(std::vector<std::string> nodes, std::size_t virtual_nodes)
    : nodes_(std::move(nodes)), virtual_nodes_(virtual_nodes) {
  ARCS_CHECK_MSG(virtual_nodes_ > 0, "ring needs at least one virtual node");
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
  points_.reserve(nodes_.size() * virtual_nodes_);
  for (std::size_t n = 0; n < nodes_.size(); ++n)
    for (std::size_t v = 0; v < virtual_nodes_; ++v)
      points_.push_back(Point{point_hash(nodes_[n], v),
                              static_cast<std::uint32_t>(n)});
  // Hash ties (astronomically rare) break by node index, which is
  // deterministic because nodes_ is sorted.
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
            });
}

bool Ring::contains(const std::string& name) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), name);
}

std::size_t Ring::owner_point(std::uint64_t hash) const {
  ARCS_CHECK_MSG(!points_.empty(), "ring has no members");
  // First point at or after the hash; wrap to the first point.
  std::size_t lo = 0;
  std::size_t hi = points_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (points_[mid].hash < hash)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo == points_.size() ? 0 : lo;
}

const std::string& Ring::owner(std::uint64_t hash) const {
  return nodes_[points_[owner_point(hash)].node];
}

std::vector<std::string> Ring::successors(std::uint64_t hash,
                                          std::size_t count) const {
  std::vector<std::string> out;
  if (points_.empty()) return out;
  count = std::min(count, nodes_.size());
  out.reserve(count);
  std::vector<bool> seen(nodes_.size(), false);
  std::size_t i = owner_point(hash);
  for (std::size_t step = 0; step < points_.size() && out.size() < count;
       ++step) {
    const std::uint32_t node = points_[(i + step) % points_.size()].node;
    if (seen[node]) continue;
    seen[node] = true;
    out.push_back(nodes_[node]);
  }
  return out;
}

std::vector<Ring::Arc> Ring::arcs_of(const std::string& name) const {
  std::vector<Arc> arcs;
  if (points_.empty()) return arcs;
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), name);
  if (it == nodes_.end() || *it != name) return arcs;
  const auto node =
      static_cast<std::uint32_t>(std::distance(nodes_.begin(), it));
  if (nodes_.size() == 1) {
    // Sole member: one arc covering the whole ring, expressed as the
    // wrapping interval just after its first point.
    arcs.push_back(Arc{points_[0].hash + 1, points_[0].hash});
    return arcs;
  }
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].node != node) continue;
    const std::size_t prev = (i + points_.size() - 1) % points_.size();
    const Arc arc{points_[prev].hash + 1, points_[i].hash};
    // Merge with the previous arc when the predecessor point is also
    // ours (consecutive vnodes of one daemon form one interval).
    if (!arcs.empty() && points_[prev].node == node &&
        arcs.back().hi + 1 == arc.lo) {
      arcs.back().hi = arc.hi;
      continue;
    }
    arcs.push_back(arc);
  }
  return arcs;
}

Ring Ring::with_node(const std::string& name) const {
  if (contains(name)) return *this;
  std::vector<std::string> nodes = nodes_;
  nodes.push_back(name);
  return Ring{std::move(nodes), std::max<std::size_t>(1, virtual_nodes_)};
}

Ring Ring::without_node(const std::string& name) const {
  if (!contains(name)) return *this;
  std::vector<std::string> nodes;
  nodes.reserve(nodes_.size() - 1);
  for (const auto& n : nodes_)
    if (n != name) nodes.push_back(n);
  return Ring{std::move(nodes), std::max<std::size_t>(1, virtual_nodes_)};
}

std::map<std::string, std::vector<std::uint64_t>> Ring::assign_bounded(
    std::vector<std::uint64_t> hashes, double load_factor) const {
  ARCS_CHECK_MSG(load_factor >= 1.0,
                 "bounded-load factor must be >= 1 (c*K/N capacity)");
  ARCS_CHECK_MSG(!nodes_.empty(), "ring has no members");
  std::map<std::string, std::vector<std::uint64_t>> out;
  for (const auto& n : nodes_) out.emplace(n, std::vector<std::uint64_t>{});
  if (hashes.empty()) return out;
  // Sorted key order makes the placement a function of the set alone.
  std::sort(hashes.begin(), hashes.end());
  const auto capacity = static_cast<std::size_t>(std::ceil(
      load_factor * static_cast<double>(hashes.size()) /
      static_cast<double>(nodes_.size())));
  for (const std::uint64_t h : hashes) {
    const std::vector<std::string> order = successors(h, nodes_.size());
    bool placed = false;
    for (const auto& name : order) {
      auto& bucket = out[name];
      if (bucket.size() < capacity) {
        bucket.push_back(h);
        placed = true;
        break;
      }
    }
    // ceil(c*K/N)*N >= K for c >= 1, so a non-full node always exists.
    ARCS_CHECK_MSG(placed, "bounded-load placement found no free node");
  }
  return out;
}

}  // namespace arcs::fleet
