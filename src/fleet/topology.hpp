// fleet.json — the declarative fleet topology.
//
// One document describes a whole fleet: the member daemons (name +
// socket path), ring geometry (virtual nodes), replication degree,
// hot-key threshold, and the cluster-wide power cap the BudgetArbiter
// enforces. Every router built from the same topology file places keys
// identically (Ring construction is deterministic), so client-side
// routers and arcs_fleetd proxies can be mixed freely.
//
//   {
//     "proto": "arcs-fleet/v1",
//     "virtual_nodes": 64,
//     "replicas": 1,
//     "hot_key_threshold": 64,
//     "cluster_power_cap": 360.0,
//     "endpoints": [
//       {"name": "shard-a", "socket": "/tmp/arcs-a.sock"},
//       {"name": "shard-b", "socket": "/tmp/arcs-b.sock"}
//     ]
//   }
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"

namespace arcs::fleet {

inline constexpr std::string_view kTopologyProto = "arcs-fleet/v1";

struct TopologyEndpoint {
  std::string name;    ///< ring identity; must be unique in the fleet
  std::string socket;  ///< Unix-socket path of the daemon
};

struct Topology {
  std::vector<TopologyEndpoint> endpoints;
  /// Ring points per daemon; more = smoother arcs, slower membership ops.
  std::size_t virtual_nodes = 64;
  /// Hot keys are mirrored to this many ring successors beyond the owner.
  std::size_t replicas = 1;
  /// Router-observed hits at which a key counts as hot (0 disables
  /// replication).
  std::uint64_t hot_key_threshold = 64;
  /// Cluster-wide power cap in watts shared by all jobs (0 = none).
  double cluster_power_cap = 0.0;

  /// Throws common::ContractError on duplicate/empty names or sockets.
  void validate() const;

  common::Json to_json() const;
  /// Throws common::ContractError on version skew or malformed fields.
  static Topology from_json(const common::Json& json);

  /// File round trip (load validates). Throws on I/O or parse failure.
  static Topology load(const std::string& path);
  void save(const std::string& path) const;
};

}  // namespace arcs::fleet
