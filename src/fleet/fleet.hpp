// Umbrella header for the ARCS fleet tier (see docs/FLEET.md).
//
// The fleet tier turns N independent arcsd daemons into one logical
// tuning service:
//
//   fleet::Topology topo = fleet::Topology::load("fleet.json");
//   fleet::Router router{fleet::RouterOptions::from(topo)};
//   router.add_endpoint("shard-a", &client_a);   // serve::Client per daemon
//   router.add_endpoint("shard-b", &client_b);
//   // router IS a serve::Client: hand it to TuningStrategy::Remote…
//   // …and a serve::RequestHandler: put a SocketServer in front of it
//   // and it is the arcs_fleetd proxy.
//
// Jobs sharing the cluster under one power cap register with the
// BudgetArbiter; renegotiated caps reach running jobs through
// cluster::JobOptions::budget_provider and stale cache entries are
// invalidated fleet-wide through Router::invalidate.
#pragma once

#include "fleet/arbiter.hpp"    // IWYU pragma: export
#include "fleet/collector.hpp"  // IWYU pragma: export
#include "fleet/ring.hpp"       // IWYU pragma: export
#include "fleet/router.hpp"     // IWYU pragma: export
#include "fleet/topology.hpp"   // IWYU pragma: export
