// fleet::BudgetArbiter — one cluster-wide power cap, many jobs.
//
// src/cluster/ jobs each enforce a *job* power budget (bisecting a
// frequency scale against the model at rebalance points); the arbiter
// closes the loop above them: every running job registers with its
// power sensitivity (how much objective improves per extra watt, read
// from history via power_sensitivity()), and the arbiter water-fills
// the cluster cap across the registry. Arrivals and departures
// renegotiate every cap; the invariant — the sum of allocated job caps
// never exceeds the cluster cap — holds after every event, which is
// what bench_x16_fleet gates on.
//
// Water-filling: each job first gets the floor (min_job_cap, scaled
// down uniformly when the floor alone is infeasible), then the
// remaining watts are divided proportionally to sensitivity, with
// per-job ceilings (max_job_cap) respected by iteratively freezing
// clamped jobs and re-dividing among the rest. Linear-utility
// water-filling with box constraints; deterministic given the same
// registry.
//
// A renegotiation changes the power_cap field of every affected job's
// HistoryKeys, so cached decisions made at the old cap are stale
// fleet-wide. The hook (set_hook) fires with the cap changes AFTER the
// arbiter lock is released — rank kFleetArbiter sits below the serve
// locks, and the hook typically issues fleet Invalidate traffic (see
// keys_for), which blocks.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/sync.hpp"
#include "core/history.hpp"

namespace arcs::fleet {

struct ArbiterOptions {
  /// Cluster-wide cap in watts shared by every registered job.
  double cluster_power_cap = 0.0;
  /// Per-job floor; scaled down uniformly when jobs * floor exceeds the
  /// cluster cap (the invariant always wins).
  double min_job_cap = 10.0;
  /// Per-job ceiling; 0 = unbounded. Watts a clamped job cannot absorb
  /// flow to the others.
  double max_job_cap = 0.0;
};

/// One job's cap before/after a renegotiation (old_cap 0 = arriving,
/// new_cap 0 = departing). Carries the job's workload identity so the
/// hook can invalidate the cache entries keyed at the old cap.
struct CapChange {
  std::string job_id;
  std::string app;
  std::string machine;
  double old_cap = 0.0;
  double new_cap = 0.0;
};

class BudgetArbiter {
 public:
  using RenegotiationHook =
      std::function<void(const std::vector<CapChange>&)>;

  explicit BudgetArbiter(ArbiterOptions options);

  /// Registers a job and renegotiates every cap. `sensitivity` is the
  /// job's objective-per-watt slope (>= 0; see power_sensitivity).
  /// Returns every cap that moved, the new arrival included.
  std::vector<CapChange> add_job(const std::string& job_id,
                                 const std::string& app,
                                 const std::string& machine,
                                 double sensitivity);
  /// Unregisters and renegotiates; the departed job's watts flow back
  /// to the survivors. No-op (empty result) for unknown ids.
  std::vector<CapChange> remove_job(const std::string& job_id);

  /// The job's current allocation (0 for unknown ids).
  double cap_of(const std::string& job_id) const;
  /// Sum of all current allocations — always <= cluster_power_cap.
  double total_allocated() const;
  std::size_t job_count() const;
  const ArbiterOptions& options() const { return options_; }

  /// A closure over cap_of(job_id), shaped for
  /// cluster::JobOptions::budget_provider: the job polls it at every
  /// rebalance point and tracks renegotiations mid-run.
  std::function<double()> budget_provider(const std::string& job_id) const;

  /// Fires with the change set after every renegotiation, outside the
  /// arbiter lock.
  void set_hook(RenegotiationHook hook);

  /// Estimates a workload's power sensitivity from history: the
  /// negated least-squares slope of best objective vs power cap across
  /// the store's entries for (app, machine), clamped at 0 (more watts
  /// never hurt). Falls back to 1.0 when fewer than two distinct caps
  /// are recorded — every job equal until the data says otherwise.
  static double power_sensitivity(const HistoryStore& store,
                                  const std::string& app,
                                  const std::string& machine);

  /// The history keys a renegotiation stales: every entry for
  /// (app, machine) recorded at exactly old_cap. Feed each to
  /// Router::invalidate.
  static std::vector<HistoryKey> keys_for(const HistoryStore& store,
                                          const std::string& app,
                                          const std::string& machine,
                                          double old_cap);

 private:
  struct Job {
    std::string app;
    std::string machine;
    double sensitivity = 0.0;
    double cap = 0.0;
  };

  /// Recomputes every cap in place; returns the moved set.
  std::vector<CapChange> renegotiate_locked();

  ArbiterOptions options_;
  mutable analysis::Mutex mu_{"fleet/arbiter",
                              analysis::sync::rank::kFleetArbiter};
  std::map<std::string, Job> jobs_;
  RenegotiationHook hook_;
};

}  // namespace arcs::fleet
