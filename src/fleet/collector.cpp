#include "fleet/collector.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

#include "serve/protocol.hpp"
#include "telemetry/telemetry.hpp"

namespace arcs::fleet {

namespace serve = arcs::serve;

namespace {

constexpr std::size_t kMaxAnomalies = 32;
constexpr std::size_t kMaxHistory = 32;

double number_or(const common::Json* j, double fallback) {
  return (j != nullptr && j->is_number()) ? j->as_number() : fallback;
}

}  // namespace

Collector::Collector(Router& router, CollectorOptions options)
    : router_(router),
      options_(options),
      store_(options.series),
      engine_(options.slo) {}

std::size_t Collector::scrape(double now_s) {
  // Phase 1, lock-free: endpoint I/O through the router's direct path,
  // so a dead daemon costs a fast local Error (the router already marked
  // it) and a hung one only this scrape's timeout.
  const std::vector<std::string> names = router_.endpoint_names();
  struct Scraped {
    std::string name;
    bool ok = false;
    common::Json doc;
  };
  std::vector<Scraped> results;
  results.reserve(names.size());
  serve::Request request;
  request.op = serve::Op::Metrics;
  std::size_t answered = 0;
  for (const std::string& name : names) {
    serve::Response response = router_.call_endpoint(name, request);
    const bool ok = response.status == serve::Status::Ok &&
                    response.metrics.is_object();
    if (ok) ++answered;
    results.push_back({name, ok, std::move(response.metrics)});
  }

  // Phase 2, under the collector lock: ingest + SLO evaluation.
  const std::lock_guard<analysis::Mutex> lock(mu_);
  for (const Scraped& r : results) ingest(r.name, r.ok, r.doc, now_s);
  ++scrapes_;
  last_scrape_s_ = now_s;
  have_scraped_ = true;
  evaluate(now_s);
  return answered;
}

bool Collector::tick(double now_s) {
  if (options_.scrape_interval_s <= 0) return false;
  {
    const std::lock_guard<analysis::Mutex> lock(mu_);
    if (have_scraped_ &&
        now_s - last_scrape_s_ < options_.scrape_interval_s)
      return false;
  }
  scrape(now_s);
  return true;
}

void Collector::ingest(const std::string& name, bool ok,
                       const common::Json& doc, double now_s) {
  NodeState& node = nodes_.try_emplace(
      name, NodeState{false, 0, 0, "", 0, 0,
                      telemetry::AnomalyDetector(
                          options_.anomaly_alpha, options_.anomaly_z,
                          options_.anomaly_min_samples)})
      .first->second;
  node.scrape_ok = ok;
  store_.record_gauge(name + "/up", now_s, ok ? 1.0 : 0.0);
  if (!ok) {
    ++node.consecutive_failures;
    return;
  }
  node.consecutive_failures = 0;
  node.last_ok_s = now_s;
  node.uptime_s = number_or(doc.find("uptime_s"), node.uptime_s);
  if (const common::Json* build = doc.find("build")) {
    if (const common::Json* version = build->find("version"))
      if (version->is_string()) node.version = version->as_string();
  }
  // Counters and gauges are ingested generically: the serve schema can
  // grow keys without the collector needing to learn them.
  if (const common::Json* counters = doc.find("counters")) {
    for (const auto& [key, value] : counters->members()) {
      if (!value.is_number()) continue;
      store_.record_counter(name + "/serve/" + key, now_s,
                            value.as_number());
      if (key == "requests") {
        const double total = value.as_number();
        const double delta = std::max(0.0, total - node.requests_total);
        // Request-rate anomaly: one robust z-score per node over the
        // per-scrape request delta. Skip the very first reading (the
        // whole historical total is not a rate).
        if (node.requests_total > 0 || delta == 0) {
          if (node.rate_detector.observe(delta))
            note_anomaly({name, "serve/requests_per_scrape", delta,
                          node.rate_detector.center(), now_s});
        }
        node.requests_total = total;
      }
    }
  }
  if (const common::Json* gauges = doc.find("gauges")) {
    for (const auto& [key, value] : gauges->members()) {
      if (!value.is_number()) continue;
      store_.record_gauge(name + "/serve/" + key, now_s,
                          value.as_number());
    }
  }
  if (const common::Json* per_op = doc.find("latency_per_op")) {
    for (const auto& [key, value] : per_op->members()) {
      telemetry::HistogramSnapshot snap;
      if (!telemetry::HistogramSnapshot::from_json(value, &snap))
        continue;
      store_.record_histogram(name + "/serve/" + key + "_seconds", now_s,
                              snap);
    }
  }
}

telemetry::HistogramSnapshot Collector::latency_window(
    std::string_view node, double now_s) const {
  const double from = now_s - options_.window_s;
  telemetry::HistogramSnapshot merged;
  static constexpr const char* kOps[] = {"hit", "miss", "predicted"};
  if (!node.empty()) {
    for (const char* op : kOps)
      merged.merge(store_.histogram_window(
          std::string(node) + "/serve/" + op + "_seconds", from, now_s));
    return merged;
  }
  for (const auto& [name, state] : nodes_) {
    (void)state;
    for (const char* op : kOps)
      merged.merge(store_.histogram_window(
          name + "/serve/" + op + "_seconds", from, now_s));
  }
  return merged;
}

double Collector::window_sum(const std::string& name, double now_s) const {
  return store_.window(name, now_s - options_.window_s, now_s).sum;
}

void Collector::note_anomaly(Anomaly a) {
  telemetry::Tracer& tracer = telemetry::Tracer::instance();
  if (tracer.enabled())
    tracer.instant(telemetry::Category::Fleet,
                   telemetry::TimeDomain::Host,
                   "anomaly/" + a.node + "/" + a.metric,
                   tracer.host_track(), tracer.now());
  anomalies_.push_back(std::move(a));
  if (anomalies_.size() > kMaxAnomalies)
    anomalies_.erase(anomalies_.begin(),
                     anomalies_.begin() +
                         static_cast<std::ptrdiff_t>(anomalies_.size() -
                                                     kMaxAnomalies));
}

void Collector::evaluate(double now_s) {
  // Per-node liveness: LowerBound against 1.0, so consecutive failed
  // scrapes burn the hysteresis and the alert fires on the second miss.
  for (const auto& [name, node] : nodes_)
    engine_.evaluate(name + "/up", name, now_s,
                     node.scrape_ok ? 1.0 : 0.0, 1.0,
                     telemetry::SloKind::LowerBound, "page");

  double requests = 0;
  double errors = 0;
  double hits = 0;
  double misses = 0;
  for (const auto& [name, node] : nodes_) {
    (void)node;
    requests += window_sum(name + "/serve/requests", now_s);
    errors += window_sum(name + "/serve/timeouts", now_s) +
              window_sum(name + "/serve/overloaded", now_s);
    hits += window_sum(name + "/serve/hits", now_s);
    misses += window_sum(name + "/serve/misses", now_s);
  }

  const telemetry::HistogramSnapshot fleet_latency =
      latency_window({}, now_s);
  if (options_.p99_target_us > 0 && fleet_latency.count > 0)
    engine_.evaluate("fleet/p99_us", "", now_s,
                     fleet_latency.quantile(0.99) * 1e6,
                     options_.p99_target_us,
                     telemetry::SloKind::UpperBound, "page");

  const bool enough =
      requests >= static_cast<double>(options_.min_window_requests);
  if (options_.error_rate_target > 0 && enough)
    engine_.evaluate("fleet/error_rate", "", now_s, errors / requests,
                     options_.error_rate_target,
                     telemetry::SloKind::UpperBound, "page");
  if (options_.hit_ratio_floor > 0 && enough && hits + misses > 0)
    engine_.evaluate("fleet/hit_ratio", "", now_s,
                     hits / (hits + misses), options_.hit_ratio_floor,
                     telemetry::SloKind::LowerBound, "warn");
  if (options_.power_violation_budget_s > 0 && have_power_)
    engine_.evaluate("fleet/power_violation_s", "", now_s,
                     window_sum("fleet/power_violation_s", now_s),
                     options_.power_violation_budget_s,
                     telemetry::SloKind::UpperBound, "page");
}

void Collector::record_power(double now_s, double watts, double cap_watts) {
  const std::lock_guard<analysis::Mutex> lock(mu_);
  store_.record_gauge("fleet/power_watts", now_s, watts);
  store_.record_gauge("fleet/power_cap_watts", now_s, cap_watts);
  // Violation seconds accrue over the interval the fleet *was* over cap
  // (previous sample over → this interval counts), integrated on the
  // caller's clock and retained as a cumulative counter so windowed
  // budget checks read an exact per-window sum.
  if (have_power_ && last_power_over_ && now_s > last_power_t_)
    power_violation_total_s_ += now_s - last_power_t_;
  store_.record_counter("fleet/power_violation_s", now_s,
                        power_violation_total_s_);
  last_power_t_ = now_s;
  last_power_over_ = cap_watts > 0 && watts > cap_watts;
  have_power_ = true;
}

common::Json Collector::fleet_status() const {
  const std::lock_guard<analysis::Mutex> lock(mu_);
  const double now_s = last_scrape_s_;
  common::Json j = common::Json::object();
  j.set("schema", std::string("arcs-fleet-status/v1"));
  j.set("now_s", now_s);
  j.set("scrapes", scrapes_);
  j.set("scrape_interval_s", options_.scrape_interval_s);
  j.set("window_s", options_.window_s);

  common::Json nodes = common::Json::array();
  std::size_t up = 0;
  double requests = 0;
  double errors = 0;
  double hits = 0;
  double misses = 0;
  for (const auto& [name, node] : nodes_) {
    const double node_requests =
        window_sum(name + "/serve/requests", now_s);
    const double node_hits = window_sum(name + "/serve/hits", now_s);
    const double node_misses = window_sum(name + "/serve/misses", now_s);
    requests += node_requests;
    errors += window_sum(name + "/serve/timeouts", now_s) +
              window_sum(name + "/serve/overloaded", now_s);
    hits += node_hits;
    misses += node_misses;
    if (node.scrape_ok) ++up;
    common::Json n = common::Json::object();
    n.set("name", name);
    n.set("up", node.scrape_ok);
    n.set("consecutive_failures", node.consecutive_failures);
    n.set("uptime_s", node.uptime_s);
    n.set("version", node.version);
    n.set("requests_total", node.requests_total);
    n.set("window_requests", node_requests);
    n.set("window_hit_ratio",
          node_hits + node_misses > 0
              ? node_hits / (node_hits + node_misses)
              : 0.0);
    const telemetry::HistogramSnapshot latency =
        latency_window(name, now_s);
    n.set("window_p99_us",
          latency.count > 0 ? latency.quantile(0.99) * 1e6 : 0.0);
    nodes.push_back(std::move(n));
  }
  j.set("nodes", std::move(nodes));

  common::Json fleet = common::Json::object();
  fleet.set("nodes_total", nodes_.size());
  fleet.set("nodes_up", up);
  fleet.set("window_requests", requests);
  fleet.set("requests_per_s",
            options_.window_s > 0 ? requests / options_.window_s : 0.0);
  fleet.set("error_rate", requests > 0 ? errors / requests : 0.0);
  fleet.set("hit_ratio",
            hits + misses > 0 ? hits / (hits + misses) : 0.0);
  const telemetry::HistogramSnapshot latency = latency_window({}, now_s);
  fleet.set("p50_us",
            latency.count > 0 ? latency.quantile(0.50) * 1e6 : 0.0);
  fleet.set("p99_us",
            latency.count > 0 ? latency.quantile(0.99) * 1e6 : 0.0);
  if (have_power_) {
    const telemetry::SeriesPoint watts =
        store_.window("fleet/power_watts", now_s - options_.window_s,
                      now_s);
    fleet.set("power_watts", watts.count > 0 ? watts.last : 0.0);
    fleet.set("power_violation_s", power_violation_total_s_);
  }
  j.set("fleet", std::move(fleet));

  common::Json alerts = common::Json::array();
  for (const telemetry::Alert& a : engine_.active())
    alerts.push_back(a.to_json());
  j.set("alerts", std::move(alerts));
  common::Json recent = common::Json::array();
  const std::vector<telemetry::Alert>& history = engine_.history();
  const std::size_t first =
      history.size() > kMaxHistory ? history.size() - kMaxHistory : 0;
  for (std::size_t i = first; i < history.size(); ++i)
    recent.push_back(history[i].to_json());
  j.set("recent", std::move(recent));
  common::Json anomalies = common::Json::array();
  for (const Anomaly& a : anomalies_) {
    common::Json row = common::Json::object();
    row.set("node", a.node);
    row.set("metric", a.metric);
    row.set("value", a.value);
    row.set("center", a.center);
    row.set("t", a.t);
    anomalies.push_back(std::move(row));
  }
  j.set("anomalies", std::move(anomalies));
  j.set("alerts_fired_total", engine_.fired_total());
  return j;
}

std::uint64_t Collector::scrapes() const {
  const std::lock_guard<analysis::Mutex> lock(mu_);
  return scrapes_;
}

std::uint64_t Collector::alerts_fired() const {
  const std::lock_guard<analysis::Mutex> lock(mu_);
  return engine_.fired_total();
}

}  // namespace arcs::fleet
