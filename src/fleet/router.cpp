#include "fleet/router.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <shared_mutex>

#include "common/check.hpp"
#include "serve/cache.hpp"
#include "telemetry/flight_recorder.hpp"

namespace arcs::fleet {

namespace serve = arcs::serve;

RouterOptions RouterOptions::from(const Topology& topology) {
  RouterOptions options;
  options.virtual_nodes = topology.virtual_nodes;
  options.replicas = topology.replicas;
  options.hot_key_threshold = topology.hot_key_threshold;
  return options;
}

Router::Router(RouterOptions options) : options_(std::move(options)) {
  ARCS_CHECK_MSG(options_.virtual_nodes > 0,
                 "router needs at least one virtual node per endpoint");
}

const Router::Endpoint* Router::State::find(const std::string& name) const {
  const auto it = std::lower_bound(
      endpoints.begin(), endpoints.end(), name,
      [](const Endpoint& ep, const std::string& n) { return ep.name < n; });
  if (it == endpoints.end() || it->name != name) return nullptr;
  return &*it;
}

std::shared_ptr<const Router::State> Router::state() const {
  const std::shared_lock<analysis::SharedMutex> lock(state_mu_);
  return state_;
}

void Router::swap_state(std::shared_ptr<const State> next) {
  const std::unique_lock<analysis::SharedMutex> lock(state_mu_);
  state_ = std::move(next);
}

std::int64_t Router::now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Router::add_endpoint(const std::string& name, serve::Client* client) {
  ARCS_CHECK_MSG(client != nullptr, "fleet endpoint needs a client");
  const std::shared_ptr<const State> old = state();
  ARCS_CHECK_MSG(old->find(name) == nullptr,
                 "duplicate fleet endpoint: " + name);

  auto next = std::make_shared<State>();
  next->endpoints = old->endpoints;
  Endpoint ep;
  ep.name = name;
  ep.client = client;
  ep.health = std::make_shared<Health>();
  // Stable Counter& per endpoint: the hot path never re-hits the
  // registry map.
  ep.requests = &registry_.counter("fleet/endpoint/" + name + "/requests");
  ep.errors = &registry_.counter("fleet/endpoint/" + name + "/errors");
  next->endpoints.push_back(std::move(ep));
  std::sort(next->endpoints.begin(), next->endpoints.end(),
            [](const Endpoint& a, const Endpoint& b) {
              return a.name < b.name;
            });
  // Rebuilt from the full name set every time (not incrementally), so
  // the ring is a pure function of membership + options.
  std::vector<std::string> names;
  names.reserve(next->endpoints.size());
  for (const auto& e : next->endpoints) names.push_back(e.name);
  next->ring = Ring{std::move(names), options_.virtual_nodes};
  swap_state(std::move(next));
}

void Router::remove_endpoint(const std::string& name) {
  const std::shared_ptr<const State> old = state();
  if (old->find(name) == nullptr) return;
  auto next = std::make_shared<State>();
  next->endpoints.reserve(old->endpoints.size() - 1);
  for (const auto& ep : old->endpoints)
    if (ep.name != name) next->endpoints.push_back(ep);
  std::vector<std::string> names;
  names.reserve(next->endpoints.size());
  for (const auto& e : next->endpoints) names.push_back(e.name);
  next->ring = Ring{std::move(names), options_.virtual_nodes};
  swap_state(std::move(next));
}

std::vector<std::string> Router::endpoint_names() const {
  const std::shared_ptr<const State> st = state();
  return st->ring.nodes();
}

bool Router::alive(const std::string& name) const {
  const std::shared_ptr<const State> st = state();
  const Endpoint* ep = st->find(name);
  return ep != nullptr &&
         ep->health->alive.load(std::memory_order_acquire);
}

void Router::mark_down(const std::string& name) {
  const std::shared_ptr<const State> st = state();
  const Endpoint* ep = st->find(name);
  if (ep != nullptr) record_failure(*ep);
}

void Router::record_failure(const Endpoint& ep) {
  failures_.add();
  ep.errors->add();
  ep.health->alive.store(false, std::memory_order_release);
  const std::uint32_t n =
      ep.health->failures.fetch_add(1, std::memory_order_relaxed) + 1;
  // Exponential backoff capped at the max; shifts beyond 62 would
  // overflow, so clamp the exponent first.
  const double backoff_s =
      std::min(options_.probe_backoff_max_s,
               options_.probe_backoff_initial_s *
                   std::pow(2.0, static_cast<double>(std::min(n - 1u, 30u))));
  ep.health->next_probe_us.store(
      now_us() + static_cast<std::int64_t>(backoff_s * 1e6),
      std::memory_order_release);
}

serve::Response Router::route_keyed(const serve::Request& request,
                                    std::uint64_t hash,
                                    const std::shared_ptr<const State>& st) {
  // Walk the full successor order: the first live endpoint is the key's
  // home of record. A transport failure marks the endpoint dead and
  // falls through to the next — the caller never sees the outage.
  const std::vector<std::string> order =
      st->ring.successors(hash, st->ring.size());
  bool fell_through = false;
  for (const std::string& name : order) {
    const Endpoint* ep = st->find(name);
    if (ep == nullptr ||
        !ep->health->alive.load(std::memory_order_acquire)) {
      // Skipping a dead endpoint IS a re-route: the key is about to be
      // served by someone other than its ring owner.
      fell_through = true;
      continue;
    }
    ep->requests->add();
    serve::Response response = ep->client->call(request);
    if (response.status == serve::Status::Error &&
        ep->client->transport_failed()) {
      record_failure(*ep);
      fell_through = true;
      continue;
    }
    if (fell_through) rerouted_.add();
    return response;
  }
  dead_end_errors_.add();
  serve::Response response;
  response.status = serve::Status::Error;
  response.error = "fleet: no live endpoint for key";
  return response;
}

serve::Response Router::route_get(const serve::Request& request) {
  const std::shared_ptr<const State> st = state();
  if (st->ring.empty()) {
    serve::Response response;
    response.status = serve::Status::Error;
    response.error = "fleet: no endpoints registered";
    return response;
  }
  const std::uint64_t hash = serve::DecisionCache::key_hash(request.key);
  const std::size_t slot = hash & (kSketchSlots - 1);
  const bool replication_on =
      options_.replicas > 0 && options_.hot_key_threshold > 0;

  // Hot keys fan read-only probes across the replica set first. A
  // read-only Get can never start/join/wait on a search (protocol
  // contract), so this is pure load spreading: any Hit answers, any
  // miss falls through to the plain routed Get below.
  if (replication_on && !request.read_only &&
      replicated_[slot].load(std::memory_order_acquire) != 0) {
    const std::vector<std::string> replica_set =
        st->ring.successors(hash, 1 + options_.replicas);
    serve::Request probe = request;
    probe.read_only = true;
    probe.wait_ms = 0.0;
    for (const std::string& name : replica_set) {
      const Endpoint* ep = st->find(name);
      if (ep == nullptr ||
          !ep->health->alive.load(std::memory_order_acquire))
        continue;
      ep->requests->add();
      const serve::Response response = ep->client->call(probe);
      if (response.status == serve::Status::Error &&
          ep->client->transport_failed()) {
        record_failure(*ep);
        continue;
      }
      if (response.status == serve::Status::Hit) {
        fanout_hits_.add();
        return response;
      }
    }
    fanout_misses_.add();
  }

  serve::Response response = route_keyed(request, hash, st);
  if (response.status == serve::Status::Hit && replication_on) {
    const std::uint64_t hits =
        hot_hits_[slot].fetch_add(1, std::memory_order_relaxed) + 1;
    // Mirror once, at the threshold crossing, and only decisions with
    // measured provenance (evaluations > 0) — predictions are not worth
    // replicating and cannot be expressed as a faithful Put.
    if (hits >= options_.hot_key_threshold && response.evaluations > 0 &&
        replicated_[slot].exchange(1, std::memory_order_acq_rel) == 0) {
      replicated_keys_.add();
      replicate(request, response, hash, st);
    }
  }
  return response;
}

void Router::replicate(const serve::Request& get,
                       const serve::Response& hit, std::uint64_t hash,
                       const std::shared_ptr<const State>& st) {
  serve::Request put;
  put.op = serve::Op::Put;
  put.key = get.key;
  put.config = hit.config;
  put.value = hit.best_value;
  put.evaluations = hit.evaluations;
  const std::vector<std::string> replica_set =
      st->ring.successors(hash, 1 + options_.replicas);
  // Skip the owner (index 0): it already holds the entry.
  for (std::size_t i = 1; i < replica_set.size(); ++i) {
    const Endpoint* ep = st->find(replica_set[i]);
    if (ep == nullptr ||
        !ep->health->alive.load(std::memory_order_acquire))
      continue;
    ep->requests->add();
    const serve::Response response = ep->client->call(put);
    if (response.status == serve::Status::Error &&
        ep->client->transport_failed()) {
      record_failure(*ep);
      continue;
    }
    if (response.status == serve::Status::Ok) mirror_puts_.add();
  }
}

serve::Response Router::call_endpoint(const std::string& name,
                                      const serve::Request& request) {
  const std::shared_ptr<const State> st = state();
  const Endpoint* ep = st->find(name);
  serve::Response response;
  if (ep == nullptr) {
    response.status = serve::Status::Error;
    response.error = "fleet: unknown endpoint: " + name;
    return response;
  }
  if (!ep->health->alive.load(std::memory_order_acquire)) {
    response.status = serve::Status::Error;
    response.error = "fleet: endpoint down: " + name;
    return response;
  }
  ep->requests->add();
  response = ep->client->call(request);
  if (response.status == serve::Status::Error &&
      ep->client->transport_failed())
    record_failure(*ep);
  return response;
}

void Router::set_status_provider(std::function<common::Json()> provider) {
  auto next = std::make_shared<const std::function<common::Json()>>(
      std::move(provider));
  const std::unique_lock<analysis::SharedMutex> lock(state_mu_);
  status_provider_ = std::move(next);
}

std::size_t Router::invalidate(const HistoryKey& key) {
  const std::shared_ptr<const State> st = state();
  if (st->ring.empty()) return 0;
  const std::uint64_t hash = serve::DecisionCache::key_hash(key);
  const std::size_t slot = hash & (kSketchSlots - 1);
  // Reset the hot sketch so the key re-earns replication after the
  // renegotiated decision lands.
  replicated_[slot].store(0, std::memory_order_release);
  hot_hits_[slot].store(0, std::memory_order_relaxed);

  serve::Request request;
  request.op = serve::Op::Invalidate;
  request.key = key;
  // Every possible holder: the owner plus the replica successors.
  const std::vector<std::string> replica_set =
      st->ring.successors(hash, 1 + options_.replicas);
  std::size_t acked = 0;
  for (const std::string& name : replica_set) {
    const Endpoint* ep = st->find(name);
    if (ep == nullptr ||
        !ep->health->alive.load(std::memory_order_acquire))
      continue;
    ep->requests->add();
    const serve::Response response = ep->client->call(request);
    if (response.status == serve::Status::Error &&
        ep->client->transport_failed()) {
      record_failure(*ep);
      continue;
    }
    if (response.status == serve::Status::Ok) ++acked;
  }
  invalidations_.add();
  return acked;
}

serve::Response Router::broadcast(const serve::Request& request) {
  const std::shared_ptr<const State> st = state();
  serve::Response response;
  response.status = serve::Status::Ok;
  for (const Endpoint& ep : st->endpoints) {
    if (!ep.health->alive.load(std::memory_order_acquire)) continue;
    ep.requests->add();
    const serve::Response r = ep.client->call(request);
    if (r.status == serve::Status::Error &&
        ep.client->transport_failed()) {
      record_failure(ep);
      continue;
    }
    if (r.status != serve::Status::Ok && response.error.empty()) {
      response.status = r.status;
      response.error = r.error;
    }
  }
  return response;
}

serve::Response Router::call(const serve::Request& request) {
  routed_.add();
  switch (request.op) {
    case serve::Op::Ping: {
      // The proxy itself is the liveness target; endpoint liveness is
      // in the metrics rows.
      serve::Response response;
      response.status = serve::Status::Ok;
      return response;
    }
    case serve::Op::Get:
      return route_get(request);
    case serve::Op::Report:
    case serve::Op::Put: {
      const std::shared_ptr<const State> st = state();
      if (st->ring.empty()) {
        serve::Response response;
        response.status = serve::Status::Error;
        response.error = "fleet: no endpoints registered";
        return response;
      }
      return route_keyed(request,
                         serve::DecisionCache::key_hash(request.key), st);
    }
    case serve::Op::Invalidate: {
      serve::Response response;
      response.status = serve::Status::Ok;
      invalidate(request.key);
      return response;
    }
    case serve::Op::Metrics: {
      serve::Response response;
      response.status = serve::Status::Ok;
      response.metrics = metrics_json();
      return response;
    }
    case serve::Op::Save:
      return broadcast(request);
    case serve::Op::Shutdown: {
      shutdown_.store(true, std::memory_order_release);
      if (options_.forward_shutdown) return broadcast(request);
      serve::Response response;
      response.status = serve::Status::Ok;
      return response;
    }
    case serve::Op::FleetStatus: {
      std::shared_ptr<const std::function<common::Json()>> provider;
      {
        const std::shared_lock<analysis::SharedMutex> lock(state_mu_);
        provider = status_provider_;
      }
      serve::Response response;
      if (provider == nullptr || !*provider) {
        response.status = serve::Status::Error;
        response.error = "fleet_status: no collector attached";
        return response;
      }
      response.status = serve::Status::Ok;
      response.metrics = (*provider)();
      return response;
    }
    case serve::Op::Dump: {
      // The proxy's own flight recorder; per-node dumps go through
      // call_endpoint / arcs_client dump against the daemon directly.
      serve::Response response;
      telemetry::FlightRecorder& recorder =
          telemetry::FlightRecorder::instance();
      if (!recorder.attached()) {
        response.status = serve::Status::Error;
        response.error = "dump: flight recorder is not attached";
        return response;
      }
      response.status = serve::Status::Ok;
      response.metrics = recorder.dump();
      return response;
    }
    case serve::Op::Snapshot:
    case serve::Op::WarmStart: {
      // Peer-to-peer replication ops address a specific daemon; routing
      // them through placement would be meaningless.
      serve::Response response;
      response.status = serve::Status::Error;
      response.error = "fleet: " +
                       std::string(serve::to_string(request.op)) +
                       " is a peer-to-peer op, not routable";
      return response;
    }
  }
  serve::Response response;
  response.status = serve::Status::Error;
  response.error = "fleet: unknown op";
  return response;
}

std::size_t Router::probe() {
  // One prober at a time; the mutex is flagged kAllowBlockingWhileHeld
  // because probing *is* I/O.
  const std::lock_guard<analysis::Mutex> lock(probe_mu_);
  const std::shared_ptr<const State> st = state();
  const std::int64_t now = now_us();
  std::size_t revived = 0;
  for (const Endpoint& ep : st->endpoints) {
    if (ep.health->alive.load(std::memory_order_acquire)) continue;
    if (now < ep.health->next_probe_us.load(std::memory_order_acquire))
      continue;
    probes_.add();
    // SocketClient redials here; in-process clients return false but
    // may still answer the Ping (bench kill simulation toggles back).
    ep.client->reopen();
    serve::Request ping;
    ping.op = serve::Op::Ping;
    const serve::Response response = ep.client->call(ping);
    if (response.status == serve::Status::Ok &&
        !ep.client->transport_failed()) {
      ep.health->failures.store(0, std::memory_order_relaxed);
      ep.health->alive.store(true, std::memory_order_release);
      ++revived;
      revived_.add();
      if (options_.warm_start_on_rejoin) warm_start(ep.name);
    } else {
      // Still down: stretch the backoff without flipping liveness.
      const std::uint32_t n =
          ep.health->failures.fetch_add(1, std::memory_order_relaxed) + 1;
      const double backoff_s =
          std::min(options_.probe_backoff_max_s,
                   options_.probe_backoff_initial_s *
                       std::pow(2.0, static_cast<double>(
                                         std::min(n - 1u, 30u))));
      ep.health->next_probe_us.store(
          now + static_cast<std::int64_t>(backoff_s * 1e6),
          std::memory_order_release);
    }
  }
  return revived;
}

bool Router::warm_start(const std::string& name) {
  const std::shared_ptr<const State> st = state();
  const Endpoint* target = st->find(name);
  if (target == nullptr) return false;
  // The donors are whoever owns the rejoiner's arcs when it is absent —
  // exactly the nodes that absorbed its traffic while it was down.
  const Ring donors = st->ring.without_node(name);
  if (donors.empty()) return true;  // sole member: nobody to pull from
  bool ok = true;
  for (const Ring::Arc& arc : st->ring.arcs_of(name)) {
    const Endpoint* donor = st->find(donors.owner(arc.hi));
    if (donor == nullptr ||
        !donor->health->alive.load(std::memory_order_acquire)) {
      ok = false;
      continue;
    }
    serve::Request snapshot;
    snapshot.op = serve::Op::Snapshot;
    snapshot.hash_lo = arc.lo;
    snapshot.hash_hi = arc.hi;
    donor->requests->add();
    const serve::Response shard = donor->client->call(snapshot);
    if (shard.status != serve::Status::Ok) {
      if (donor->client->transport_failed()) record_failure(*donor);
      ok = false;
      continue;
    }
    if (shard.payload.empty()) continue;  // nothing cached on this arc
    serve::Request warm;
    warm.op = serve::Op::WarmStart;
    warm.payload = shard.payload;
    target->requests->add();
    const serve::Response loaded = target->client->call(warm);
    if (loaded.status != serve::Status::Ok) {
      if (target->client->transport_failed()) record_failure(*target);
      ok = false;
    }
  }
  if (ok) warm_starts_.add();
  return ok;
}

common::Json Router::metrics_json() const {
  const std::shared_ptr<const State> st = state();
  common::Json j = common::Json::object();
  j.set("proto", std::string(serve::kProtocol));
  j.set("role", std::string("fleet-router"));
  common::Json eps = common::Json::array();
  for (const Endpoint& ep : st->endpoints) {
    common::Json e = common::Json::object();
    e.set("name", ep.name);
    e.set("alive", ep.health->alive.load(std::memory_order_acquire));
    e.set("failures",
          ep.health->failures.load(std::memory_order_relaxed));
    e.set("requests", ep.requests->load());
    e.set("errors", ep.errors->load());
    eps.push_back(std::move(e));
  }
  j.set("endpoints", std::move(eps));
  j.set("metrics", registry_.json_snapshot());
  return j;
}

}  // namespace arcs::fleet
