// fleet::Router — N daemons, one logical tuning service.
//
// The router owns no cache and no sessions; it is pure placement plus
// health. Keyed ops (Get/Report/Put/Invalidate) hash the HistoryKey and
// walk the ring's successor order, skipping endpoints marked dead, so a
// daemon kill re-routes its arc to the next live successor *inside one
// client call* — the caller never sees the failure. It is both a
// serve::Client (plug it into TuningStrategy::Remote / cluster jobs via
// RemoteTuner) and a serve::RequestHandler (put a SocketServer in front
// and it becomes the arcs_fleetd proxy).
//
// Search dedup stays fleet-wide: a key has exactly one *home* (the
// first live node in successor order), and only the home ever receives
// a plain Get — so only the home can start a search, and its own
// session dedup keeps it to one. Hot keys (router-observed hit count
// past the topology threshold) are mirrored to the next R ring
// successors as faithful Puts; subsequent reads fan across the replica
// set with read_only probes, which by protocol contract can never
// start, join, or wait on a search — a cold replica answers Pending and
// the router falls through to the home. Replica reads therefore trade
// freshness for fan-out only after the decision exists.
//
// Health: a transport-level failure marks the endpoint dead and records
// an exponential-backoff probe deadline. probe() (called by the fleetd
// loop, a bench, or any caller) re-dials endpoints past their deadline
// (Client::reopen + Ping) and, on success, optionally warm-starts the
// rejoiner by snapshotting its ring arcs back from the nodes that
// absorbed them (serve ops Snapshot/WarmStart).
//
// Locking: the ring + endpoint set live in an immutable State snapshot
// behind a SharedMutex (rank kFleetTopology); every operation copies
// the shared_ptr and RELEASES before any endpoint I/O, so fleet locks
// are never held across a blocking call. Health flags are atomics
// inside the snapshot-shared Health blocks, so marking a daemon dead
// needs no lock at all. probe() serializes on its own flagged mutex
// (rank kFleetProbe) so concurrent probers cannot double-warm-start.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "analysis/sync.hpp"
#include "fleet/ring.hpp"
#include "fleet/topology.hpp"
#include "serve/client.hpp"
#include "telemetry/metrics.hpp"

namespace arcs::fleet {

struct RouterOptions {
  /// Ring points per endpoint.
  std::size_t virtual_nodes = 64;
  /// Ring successors a hot key is mirrored to (0 = owner only).
  std::size_t replicas = 1;
  /// Router-observed hits at which a key goes hot (0 disables
  /// replication and fan-out entirely).
  std::uint64_t hot_key_threshold = 64;
  /// First re-probe delay after a failure; doubles per consecutive
  /// failure up to the max.
  double probe_backoff_initial_s = 0.05;
  double probe_backoff_max_s = 2.0;
  /// Pull a rejoining endpoint's ring arcs from the peers that absorbed
  /// them (Snapshot -> WarmStart) before routing to it again.
  bool warm_start_on_rejoin = true;
  /// Forward Op::Shutdown to every live endpoint (true shuts the whole
  /// fleet down; false stops only the proxy).
  bool forward_shutdown = false;

  /// Ring/replication geometry from a fleet.json document.
  static RouterOptions from(const Topology& topology);
};

class Router : public serve::Client, public serve::RequestHandler {
 public:
  explicit Router(RouterOptions options = {});

  /// Registers a daemon. The client must outlive the router; the name
  /// must be unique. Ring arcs move onto the new endpoint immediately.
  void add_endpoint(const std::string& name, serve::Client* client);
  /// Unregisters; the endpoint's arcs fall to their successors.
  void remove_endpoint(const std::string& name);
  /// Registered endpoint names, sorted.
  std::vector<std::string> endpoint_names() const;

  /// serve::Client — one routed request/response exchange.
  serve::Response call(const serve::Request& request) override;
  /// serve::RequestHandler — same thing, for a fronting SocketServer.
  serve::Response handle(const serve::Request& request) override {
    return call(request);
  }

  /// Endpoint currently marked reachable? (Unknown names are dead.)
  bool alive(const std::string& name) const;
  /// Force-mark an endpoint dead (bench/test kill simulation; the
  /// organic path is a transport failure during a routed call).
  void mark_down(const std::string& name);
  /// Re-dial dead endpoints whose backoff deadline passed; Ping, and on
  /// success mark live (+ warm-start when configured). Returns how many
  /// endpoints came back this sweep. Thread-safe; one prober at a time.
  std::size_t probe();
  /// Snapshot `name`'s ring arcs from the nodes owning them in the ring
  /// without `name`, and WarmStart them into `name`. True if every
  /// donor transfer succeeded.
  bool warm_start(const std::string& name);

  /// Fleet-wide invalidation: Op::Invalidate to every live member of
  /// the key's replica set. Returns how many endpoints acknowledged.
  std::size_t invalidate(const HistoryKey& key);

  /// Sends `request` to the named endpoint directly (no ring placement),
  /// with the router's usual transport-failure bookkeeping. The fleet
  /// collector scrapes per-node metrics this way, so a scrape failure
  /// feeds the same health state the routing paths consult. Unknown
  /// names and endpoints marked dead answer Error without I/O.
  serve::Response call_endpoint(const std::string& name,
                                const serve::Request& request);

  /// Installs the Op::FleetStatus answer (the collector's fleet_status
  /// document). Unset, the op answers Error. The provider is invoked
  /// without router locks held and must be thread-safe.
  void set_status_provider(std::function<common::Json()> provider);

  /// True once an Op::Shutdown was routed (the fleetd loop polls this).
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Router counters plus per-endpoint request/error/health rows.
  common::Json metrics_json() const;
  telemetry::MetricsRegistry& registry() const { return registry_; }
  const RouterOptions& options() const { return options_; }

 private:
  struct Health {
    std::atomic<bool> alive{true};
    std::atomic<std::uint32_t> failures{0};
    /// Steady-clock microseconds after which probe() may re-dial.
    std::atomic<std::int64_t> next_probe_us{0};
  };

  struct Endpoint {
    std::string name;
    serve::Client* client = nullptr;
    std::shared_ptr<Health> health;
    telemetry::Counter* requests = nullptr;
    telemetry::Counter* errors = nullptr;
  };

  /// Immutable membership snapshot; swapped whole on add/remove.
  struct State {
    Ring ring;
    std::vector<Endpoint> endpoints;  ///< sorted by name
    const Endpoint* find(const std::string& name) const;
  };

  std::shared_ptr<const State> state() const;
  void swap_state(std::shared_ptr<const State> next);

  /// Owner-order walk: first live endpoint serves; transport failures
  /// mark dead and fall through to the successor.
  serve::Response route_keyed(const serve::Request& request,
                              std::uint64_t hash,
                              const std::shared_ptr<const State>& st);
  serve::Response route_get(const serve::Request& request);
  serve::Response broadcast(const serve::Request& request);

  /// Transport failure bookkeeping (dead mark + backoff deadline).
  void record_failure(const Endpoint& ep);
  /// Mirror a served-hot decision to the key's replica successors.
  void replicate(const serve::Request& get, const serve::Response& hit,
                 std::uint64_t hash,
                 const std::shared_ptr<const State>& st);

  static std::int64_t now_us();

  RouterOptions options_;

  mutable analysis::SharedMutex state_mu_{
      "fleet/topology", analysis::sync::rank::kFleetTopology};
  std::shared_ptr<const State> state_ =
      std::make_shared<const State>();

  // One prober at a time; held across probe I/O by design (flagged).
  analysis::Mutex probe_mu_{"fleet/probe",
                            analysis::sync::rank::kFleetProbe,
                            analysis::sync::kAllowBlockingWhileHeld};

  // Hot-key hit sketch: fixed array of counters indexed by key hash.
  // Collisions only make a cold key replicate early — harmless.
  static constexpr std::size_t kSketchSlots = 4096;
  std::vector<std::atomic<std::uint32_t>> hot_hits_ =
      std::vector<std::atomic<std::uint32_t>>(kSketchSlots);
  std::vector<std::atomic<std::uint8_t>> replicated_ =
      std::vector<std::atomic<std::uint8_t>>(kSketchSlots);

  std::atomic<bool> shutdown_{false};

  // Swapped whole under state_mu_ like the topology; read via a local
  // shared_ptr copy so Op::FleetStatus never holds a lock across the
  // provider call.
  std::shared_ptr<const std::function<common::Json()>> status_provider_;

  mutable telemetry::MetricsRegistry registry_;
  telemetry::Counter& routed_{registry_.counter("fleet/routed")};
  telemetry::Counter& rerouted_{registry_.counter("fleet/rerouted")};
  telemetry::Counter& failures_{registry_.counter("fleet/endpoint_failures")};
  telemetry::Counter& fanout_hits_{registry_.counter("fleet/fanout_hits")};
  telemetry::Counter& fanout_misses_{
      registry_.counter("fleet/fanout_misses")};
  telemetry::Counter& replicated_keys_{
      registry_.counter("fleet/replicated_keys")};
  telemetry::Counter& mirror_puts_{registry_.counter("fleet/mirror_puts")};
  telemetry::Counter& probes_{registry_.counter("fleet/probes")};
  telemetry::Counter& revived_{registry_.counter("fleet/revived")};
  telemetry::Counter& warm_starts_{registry_.counter("fleet/warm_starts")};
  telemetry::Counter& invalidations_{
      registry_.counter("fleet/invalidations")};
  telemetry::Counter& dead_end_errors_{
      registry_.counter("fleet/dead_end_errors")};
};

}  // namespace arcs::fleet
