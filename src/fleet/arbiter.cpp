#include "fleet/arbiter.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.hpp"

namespace arcs::fleet {

namespace {

/// Caps within this are "unchanged" — renegotiation noise below a
/// milliwatt is not worth an invalidation storm.
constexpr double kCapEpsilon = 1e-3;

}  // namespace

BudgetArbiter::BudgetArbiter(ArbiterOptions options)
    : options_(options) {
  ARCS_CHECK_MSG(options_.cluster_power_cap > 0.0,
                 "arbiter needs a positive cluster_power_cap");
  ARCS_CHECK_MSG(options_.min_job_cap >= 0.0,
                 "min_job_cap cannot be negative");
  ARCS_CHECK_MSG(
      options_.max_job_cap == 0.0 ||
          options_.max_job_cap >= options_.min_job_cap,
      "max_job_cap must be 0 (unbounded) or >= min_job_cap");
}

std::vector<CapChange> BudgetArbiter::renegotiate_locked() {
  std::vector<CapChange> changes;
  if (jobs_.empty()) return changes;

  const double n = static_cast<double>(jobs_.size());
  // The floor always fits: scale it down uniformly before dividing the
  // surplus, so the cap invariant survives arbitrary arrival storms.
  const double floor_cap =
      std::min(options_.min_job_cap, options_.cluster_power_cap / n);
  double remaining = options_.cluster_power_cap - floor_cap * n;

  std::map<std::string, double> alloc;
  for (const auto& [id, job] : jobs_) alloc[id] = floor_cap;

  // Water-filling with per-job ceilings: divide the surplus in
  // proportion to sensitivity; any job hitting its ceiling freezes
  // there and the rest re-divide what it could not absorb.
  std::set<std::string> active;
  for (const auto& [id, job] : jobs_) active.insert(id);
  while (!active.empty() && remaining > kCapEpsilon) {
    double sum_s = 0.0;
    for (const auto& id : active) sum_s += jobs_[id].sensitivity;
    bool clamped = false;
    if (sum_s <= 0.0) {
      // All-insensitive tier: split the surplus evenly.
      const double share = remaining / static_cast<double>(active.size());
      for (const auto& id : active) alloc[id] += share;
      remaining = 0.0;
      if (options_.max_job_cap > 0.0) {
        for (const auto& id : active) {
          if (alloc[id] > options_.max_job_cap) {
            remaining += alloc[id] - options_.max_job_cap;
            alloc[id] = options_.max_job_cap;
          }
        }
        // Even shares over a uniform ceiling cannot free capacity for
        // anyone else in this tier; stop rather than loop forever.
      }
      break;
    }
    const double unit = remaining / sum_s;
    std::vector<std::string> frozen;
    for (const auto& id : active) {
      const double want = alloc[id] + unit * jobs_[id].sensitivity;
      if (options_.max_job_cap > 0.0 && want > options_.max_job_cap) {
        frozen.push_back(id);
        clamped = true;
      }
    }
    if (!clamped) {
      for (const auto& id : active)
        alloc[id] += unit * jobs_[id].sensitivity;
      remaining = 0.0;
      break;
    }
    for (const auto& id : frozen) {
      remaining -= options_.max_job_cap - alloc[id];
      alloc[id] = options_.max_job_cap;
      active.erase(id);
    }
  }

  for (auto& [id, job] : jobs_) {
    const double next = alloc[id];
    if (std::abs(next - job.cap) > kCapEpsilon)
      changes.push_back(
          CapChange{id, job.app, job.machine, job.cap, next});
    job.cap = next;
  }
  return changes;
}

std::vector<CapChange> BudgetArbiter::add_job(const std::string& job_id,
                                              const std::string& app,
                                              const std::string& machine,
                                              double sensitivity) {
  ARCS_CHECK_MSG(sensitivity >= 0.0,
                 "job power sensitivity cannot be negative");
  std::vector<CapChange> changes;
  RenegotiationHook hook;
  {
    const std::lock_guard<analysis::Mutex> lock(mu_);
    ARCS_CHECK_MSG(jobs_.find(job_id) == jobs_.end(),
                   "duplicate arbiter job id: " + job_id);
    jobs_.emplace(job_id, Job{app, machine, sensitivity, 0.0});
    changes = renegotiate_locked();
    hook = hook_;
  }
  // Outside the lock: the hook issues blocking fleet traffic
  // (invalidations), and kFleetArbiter must never be held across it.
  if (hook && !changes.empty()) hook(changes);
  return changes;
}

std::vector<CapChange> BudgetArbiter::remove_job(
    const std::string& job_id) {
  std::vector<CapChange> changes;
  RenegotiationHook hook;
  {
    const std::lock_guard<analysis::Mutex> lock(mu_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return changes;
    const Job departed = it->second;
    jobs_.erase(it);
    changes = renegotiate_locked();
    if (departed.cap > 0.0)
      changes.push_back(CapChange{job_id, departed.app, departed.machine,
                                  departed.cap, 0.0});
    hook = hook_;
  }
  if (hook && !changes.empty()) hook(changes);
  return changes;
}

double BudgetArbiter::cap_of(const std::string& job_id) const {
  const std::lock_guard<analysis::Mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  return it == jobs_.end() ? 0.0 : it->second.cap;
}

double BudgetArbiter::total_allocated() const {
  const std::lock_guard<analysis::Mutex> lock(mu_);
  double total = 0.0;
  for (const auto& [id, job] : jobs_) total += job.cap;
  return total;
}

std::size_t BudgetArbiter::job_count() const {
  const std::lock_guard<analysis::Mutex> lock(mu_);
  return jobs_.size();
}

std::function<double()> BudgetArbiter::budget_provider(
    const std::string& job_id) const {
  return [this, job_id] { return cap_of(job_id); };
}

void BudgetArbiter::set_hook(RenegotiationHook hook) {
  const std::lock_guard<analysis::Mutex> lock(mu_);
  hook_ = std::move(hook);
}

double BudgetArbiter::power_sensitivity(const HistoryStore& store,
                                        const std::string& app,
                                        const std::string& machine) {
  // Average best objective per distinct cap, then the least-squares
  // slope of objective vs watts. Lower objective = better, so a
  // power-hungry workload has a negative slope; sensitivity is its
  // magnitude.
  std::map<double, std::pair<double, std::size_t>> by_cap;
  for (const auto& [key, entry] : store.entries()) {
    if (key.app != app || key.machine != machine || key.power_cap <= 0.0)
      continue;
    auto& [sum, count] = by_cap[key.power_cap];
    sum += entry.best_value;
    ++count;
  }
  if (by_cap.size() < 2) return 1.0;
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  const double n = static_cast<double>(by_cap.size());
  for (const auto& [cap, agg] : by_cap) {
    const double y = agg.first / static_cast<double>(agg.second);
    sx += cap;
    sy += y;
    sxx += cap * cap;
    sxy += cap * y;
  }
  const double denom = n * sxx - sx * sx;
  if (denom <= 0.0) return 1.0;
  const double slope = (n * sxy - sx * sy) / denom;
  return std::max(0.0, -slope);
}

std::vector<HistoryKey> BudgetArbiter::keys_for(const HistoryStore& store,
                                                const std::string& app,
                                                const std::string& machine,
                                                double old_cap) {
  std::vector<HistoryKey> keys;
  for (const auto& [key, entry] : store.entries()) {
    if (key.app == app && key.machine == machine &&
        std::abs(key.power_cap - old_cap) <= kCapEpsilon)
      keys.push_back(key);
  }
  return keys;
}

}  // namespace arcs::fleet
