// Consistent-hash ring with virtual nodes.
//
// The fleet's placement function: every HistoryKey hashes to a point on
// a 64-bit ring, and the daemon owning the first virtual-node point at
// or after it (wrapping) serves the key. Virtual nodes (default 64 per
// daemon) smooth the arc lengths so per-daemon load is near-uniform;
// removing a daemon moves only its own arcs to their successors (~K/N
// keys for K keys over N daemons), which is the whole point — a daemon
// kill or join never reshuffles the fleet.
//
// Construction is deterministic: node names are sorted before points
// are laid, point hashes depend only on (name, vnode index), and hash
// ties break by node order — the same member set yields bit-identical
// rings no matter the insertion order, so every router in a fleet
// agrees on placement without coordination.
//
// A Ring is an immutable value. Topology changes build a new Ring (see
// with_node/without_node) and the router swaps the snapshot atomically;
// concurrent readers keep routing against the old value.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace arcs::fleet {

class Ring {
 public:
  /// An inclusive wrapping hash interval (lo > hi wraps through
  /// UINT64_MAX), matching DecisionCache::snapshot_range.
  struct Arc {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
  };

  Ring() = default;
  /// Duplicates are collapsed; names are sorted internally.
  Ring(std::vector<std::string> nodes, std::size_t virtual_nodes);

  bool empty() const { return nodes_.empty(); }
  std::size_t size() const { return nodes_.size(); }
  std::size_t virtual_nodes() const { return virtual_nodes_; }
  /// Member names, sorted.
  const std::vector<std::string>& nodes() const { return nodes_; }
  bool contains(const std::string& name) const;

  /// The node owning `hash`. Ring must be non-empty.
  const std::string& owner(std::uint64_t hash) const;

  /// The first `count` *distinct* nodes in successor order starting at
  /// the owner — owner first, then the replica successors. Capped at
  /// size(); this is both the replica set (count = 1 + R) and the
  /// failover order (count = size()).
  std::vector<std::string> successors(std::uint64_t hash,
                                      std::size_t count) const;

  /// Every arc owned by `name`, adjacent same-owner arcs merged. A
  /// joining daemon warm-starts by snapshotting these ranges from the
  /// nodes that own them in the ring *without* `name`.
  std::vector<Arc> arcs_of(const std::string& name) const;

  /// The ring with one more / one fewer member (no-op when already
  /// present / absent).
  Ring with_node(const std::string& name) const;
  Ring without_node(const std::string& name) const;

  /// Bounded-load bulk placement (Mirrokni et al.): each key goes to the
  /// first successor whose assigned count is below
  /// ceil(load_factor * K / N). No node ever exceeds that capacity, at
  /// the cost of spilling a key past its owner when the owner is full.
  /// Keys are processed in sorted hash order, so the assignment is a
  /// pure function of the key *set*. load_factor must be >= 1.
  std::map<std::string, std::vector<std::uint64_t>> assign_bounded(
      std::vector<std::uint64_t> hashes, double load_factor) const;

  /// The ring point for one virtual node (exposed for tests).
  static std::uint64_t point_hash(const std::string& name,
                                  std::size_t vnode);

 private:
  struct Point {
    std::uint64_t hash = 0;
    std::uint32_t node = 0;  ///< index into nodes_
  };

  /// Index of the point owning `hash` (first point at or after it).
  std::size_t owner_point(std::uint64_t hash) const;

  std::vector<std::string> nodes_;  ///< sorted, unique
  std::vector<Point> points_;       ///< sorted by (hash, node)
  std::size_t virtual_nodes_ = 0;
};

}  // namespace arcs::fleet
