#include "cluster/job.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace arcs::cluster {

namespace {

constexpr common::Seconds kCapSettleIdle = 0.01;

/// Scales every region's per-iteration cost by `factor` (per-node load).
kernels::AppSpec scaled_app(const kernels::AppSpec& app, double factor) {
  kernels::AppSpec out = app;
  for (auto& r : out.regions) r.cycles_per_iter *= factor;
  for (auto& r : out.setup_regions) r.cycles_per_iter *= factor;
  return out;
}

struct Node {
  sim::MachineSpec spec;
  double load_factor = 1.0;
  kernels::AppSpec app;
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<somp::Runtime> runtime;
  std::unique_ptr<apex::Apex> apex;
  std::unique_ptr<ArcsPolicy> policy;
  HistoryStore history;
  std::vector<somp::RegionWork> setup;
  std::vector<somp::RegionWork> loop;
  double busy = 0.0;
  double wait = 0.0;
  double window_busy = 0.0;  ///< busy time since the last rebalance
  double cap = 0.0;

  void build_regions() {
    std::uint64_t codeptr = 1;
    setup.clear();
    loop.clear();
    for (const auto& region_spec : app.setup_regions)
      setup.push_back(region_spec.build(codeptr++));
    codeptr = 1000;
    for (const auto& region_spec : app.regions)
      loop.push_back(region_spec.build(codeptr++));
  }

  /// One application timestep; returns its wall time on this node.
  double run_step(int timesteps_unused) {
    (void)timesteps_unused;
    const double t0 = machine->now();
    for (const auto idx : app.step_sequence)
      runtime->parallel_for(loop[idx]);
    runtime->serial_compute(app.serial_cycles_per_step);
    return machine->now() - t0;
  }
};

ArcsOptions node_policy_options(const kernels::AppSpec& app,
                                const JobOptions& options,
                                TuningStrategy strategy, int node_index) {
  ArcsOptions po;
  po.strategy = strategy;
  po.app_name = app.name;
  po.workload = app.workload;
  po.cap_granularity = options.cap_granularity;
  po.search.seed =
      common::hash_combine(options.seed,
                           static_cast<std::uint64_t>(node_index) + 101);
  if (strategy == TuningStrategy::Remote) {
    po.remote = options.remote;
    // Nodes run interleaved on one thread: blocking on an in-flight
    // search owned by another node of this very job would deadlock.
    po.remote_timeout_ms = 0.0;
  }
  return po;
}

}  // namespace

double JobResult::imbalance() const {
  if (nodes.empty()) return 1.0;
  double max_busy = 0.0;
  double sum = 0.0;
  for (const auto& n : nodes) {
    max_busy = std::max(max_busy, n.busy_time);
    sum += n.busy_time;
  }
  const double mean = sum / static_cast<double>(nodes.size());
  return mean > 0 ? max_busy / mean : 1.0;
}

JobResult run_job(const kernels::AppSpec& app,
                  const sim::MachineSpec& machine,
                  const JobOptions& options) {
  ARCS_CHECK(options.nodes >= 1);
  ARCS_CHECK_MSG(options.machines.empty() ||
                     options.machines.size() ==
                         static_cast<std::size_t>(options.nodes),
                 "per-node machine list must match the node count");
  const int timesteps = options.timesteps_override > 0
                            ? options.timesteps_override
                            : app.timesteps;
  // The live budget: starts at the static option, refreshed from
  // budget_provider at every rebalance point.
  double job_budget = options.job_power_budget;
  const bool capped = job_budget > 0;
  if (capped) {
    ARCS_CHECK_MSG(options.job_power_budget >=
                       options.min_node_cap * options.nodes,
                   "job budget below the per-node floor");
  }

  // --- build the nodes ---
  common::Rng rng(options.seed);
  std::vector<Node> nodes(static_cast<std::size_t>(options.nodes));
  const double initial_cap =
      capped ? options.job_power_budget / options.nodes : 0.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    Node& node = nodes[i];
    node.spec = options.machines.empty() ? machine : options.machines[i];
    if (capped)
      ARCS_CHECK_MSG(node.spec.power_cappable,
                     "job budgets need power-cappable nodes");
    node.load_factor = 1.0 + options.load_spread * rng.uniform();
    node.app = scaled_app(app, node.load_factor);
    node.cap = initial_cap;
    node.build_regions();

    // Remote warm-up at the node's initial cap: resolve every region
    // against the shared tuning service before the measured run. The
    // first node whose (machine, cap, region) key misses the cache
    // drives that key's search with its own evaluations; every later
    // node's warm-up is pure cache hits — the cross-node reuse the
    // paper's job-level story implies.
    if (options.node_strategy == TuningStrategy::Remote) {
      ARCS_CHECK_MSG(options.remote != nullptr,
                     "node_strategy Remote needs JobOptions::remote");
      sim::Machine warm_machine{node.spec};
      if (capped) {
        warm_machine.set_power_cap(initial_cap);
        warm_machine.advance_idle(kCapSettleIdle);
      }
      somp::Runtime warm_runtime{warm_machine};
      apex::Apex warm_apex{warm_runtime};
      ArcsPolicy warm_policy{
          warm_apex, warm_runtime,
          node_policy_options(node.app, options, TuningStrategy::Remote,
                              static_cast<int>(i)),
          nullptr};
      auto resolved = [&] {
        for (const auto& spec : node.app.regions)
          if (!warm_policy.region_converged(spec.name)) return false;
        return true;
      };
      for (std::size_t pass = 0;
           pass < options.max_search_passes && !resolved(); ++pass) {
        for (const auto& work : node.setup)
          warm_runtime.parallel_for(work);
        for (int step = 0; step < timesteps && !resolved(); ++step) {
          for (const auto idx : node.app.step_sequence)
            warm_runtime.parallel_for(node.loop[idx]);
        }
      }
    }

    // Per-node ARCS-Offline search at the node's initial cap.
    if (options.node_strategy == TuningStrategy::OfflineReplay) {
      sim::Machine search_machine{node.spec};
      if (capped) {
        search_machine.set_power_cap(initial_cap);
        search_machine.advance_idle(kCapSettleIdle);
      }
      somp::Runtime search_runtime{search_machine};
      apex::Apex search_apex{search_runtime};
      ArcsPolicy search_policy{
          search_apex, search_runtime,
          node_policy_options(node.app, options,
                              TuningStrategy::OfflineSearch,
                              static_cast<int>(i)),
          &node.history};
      auto converged = [&] {
        for (const auto& spec : node.app.regions)
          if (!search_policy.region_converged(spec.name)) return false;
        return true;
      };
      for (std::size_t pass = 0;
           pass < options.max_search_passes && !converged(); ++pass) {
        for (const auto& work : node.setup)
          search_runtime.parallel_for(work);
        for (int step = 0; step < timesteps && !converged(); ++step) {
          for (const auto idx : node.app.step_sequence)
            search_runtime.parallel_for(node.loop[idx]);
        }
      }
      search_policy.save_history();
    }

    // The measured node (its own OS-jitter stream).
    node.machine = std::make_unique<sim::Machine>(
        node.spec, options.seed + 7919 * (i + 1));
    if (capped) {
      node.machine->set_power_cap(initial_cap);
      node.machine->advance_idle(kCapSettleIdle);
    }
    node.runtime = std::make_unique<somp::Runtime>(*node.machine);
    if (options.node_strategy != TuningStrategy::Default) {
      node.apex = std::make_unique<apex::Apex>(*node.runtime);
      node.policy = std::make_unique<ArcsPolicy>(
          *node.apex, *node.runtime,
          node_policy_options(node.app, options, options.node_strategy,
                              static_cast<int>(i)),
          &node.history);
    }
  }

  JobResult result;
  result.nodes.resize(nodes.size());

  // --- setup phase (synchronized like the step loop) ---
  double setup_max = 0.0;
  for (auto& node : nodes) {
    const double t0 = node.machine->now();
    for (const auto& work : node.setup) node.runtime->parallel_for(work);
    const double dt = node.machine->now() - t0;
    node.busy += dt;
    setup_max = std::max(setup_max, dt);
  }
  for (auto& node : nodes) {
    const double slack = setup_max - (node.machine->now() -
                                      (capped ? kCapSettleIdle : 0.0));
    if (slack > 0) {
      node.machine->advance_idle(slack);
      node.wait += slack;
    }
  }
  result.makespan += setup_max;

  // --- bulk-synchronous timestep loop ---
  for (int step = 0; step < timesteps; ++step) {
    // Adaptive power shifting toward the critical path: aim for
    // frequency proportional to each node's recent step time (which
    // equalizes predicted step times), then bisect a global scale so the
    // resulting caps sum to the budget.
    if (capped && options.policy == BudgetPolicy::AdaptiveRebalance &&
        step > 0 && step % options.rebalance_steps == 0) {
      // A cluster arbiter may have renegotiated our share since the
      // last rebalance; the caps below divide the fresh budget.
      if (options.budget_provider) {
        const double fresh = options.budget_provider();
        if (fresh > 0)
          job_budget = std::max(
              fresh, options.min_node_cap * static_cast<double>(
                         options.nodes));
      }
      double window_sum = 0.0;
      double window_max = 0.0;
      for (const auto& node : nodes) {
        window_sum += node.window_busy;
        window_max = std::max(window_max, node.window_busy);
      }
      if (window_sum > 0 && window_max > 0) {
        // Each node's power comes from its *own* curve — heterogeneous
        // nodes convert watts to frequency differently.
        auto cap_for = [&](double mu, const Node& node) {
          const auto& spec = node.spec;
          const double f = std::clamp(mu * node.window_busy,
                                      spec.frequency.f_min,
                                      spec.frequency.f_max);
          const double raw = spec.power.package_power(
              spec.frequency.quantize(f), spec.topology.total_cores());
          return std::clamp(raw, options.min_node_cap, spec.tdp);
        };
        auto total_at = [&](double mu) {
          double sum = 0.0;
          for (const auto& node : nodes) sum += cap_for(mu, node);
          return sum;
        };
        // Bisect the frequency scale mu against the budget.
        double f_min_all = 1e18, f_max_all = 0.0;
        for (const auto& node : nodes) {
          f_min_all = std::min(f_min_all, node.spec.frequency.f_min);
          f_max_all = std::max(f_max_all, node.spec.frequency.f_max);
        }
        double lo = f_min_all / window_max;
        double hi =
            f_max_all / (window_sum / static_cast<double>(nodes.size()));
        for (int it = 0; it < 48; ++it) {
          const double mid = 0.5 * (lo + hi);
          (total_at(mid) > job_budget ? hi : lo) = mid;
        }
        for (auto& node : nodes) {
          node.cap = cap_for(lo, node);
          node.machine->set_power_cap(node.cap);
          node.machine->advance_idle(kCapSettleIdle);
          node.window_busy = 0.0;
        }
        ++result.rebalances;
      }
    }

    double step_max = 0.0;
    std::vector<double> step_time(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      step_time[i] = nodes[i].run_step(timesteps);
      nodes[i].busy += step_time[i];
      nodes[i].window_busy += step_time[i];
      step_max = std::max(step_max, step_time[i]);
    }
    // The job barrier: laggards define the step, the rest idle.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const double slack = step_max - step_time[i];
      if (slack > 0) {
        nodes[i].machine->advance_idle(slack);
        nodes[i].wait += slack;
      }
    }
    result.makespan += step_max;
  }

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    result.nodes[i].machine = nodes[i].spec.name;
    result.nodes[i].load_factor = nodes[i].load_factor;
    result.nodes[i].busy_time = nodes[i].busy;
    result.nodes[i].wait_time = nodes[i].wait;
    result.nodes[i].energy = nodes[i].machine->energy();
    result.nodes[i].final_cap = capped
                                    ? nodes[i].machine->programmed_power_cap()
                                    : nodes[i].spec.tdp;
    if (nodes[i].policy) {
      for (const auto& spec : nodes[i].app.regions) {
        if (const auto cfg = nodes[i].policy->best_config(spec.name))
          result.nodes[i].region_configs.emplace(spec.name, *cfg);
      }
    }
    result.total_energy += result.nodes[i].energy;
  }
  return result;
}

}  // namespace arcs::cluster
