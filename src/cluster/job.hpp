// Job-level power management over simulated nodes.
//
// The paper frames node-level tuning inside a larger story (§I): "This
// constraint will filter down to job-level power constraints. The goal at
// the job-level will be to optimize performance subject to a prescribed
// power budget" — and cites run-time systems that divide a job budget
// across nodes (Marathe et al., Patki et al., §VI). This module closes
// that loop: a bulk-synchronous job of N nodes (the hybrid MPI+OpenMP
// pattern of the paper's motivation), a job power budget divided among
// the nodes' RAPL caps, and optionally ARCS running inside every node.
//
// Budget policies:
//  * UniformStatic     — budget/N to every node, forever;
//  * AdaptiveRebalance — every `rebalance_steps` timesteps, shift power
//    toward the nodes on the critical path (per-step time share), within
//    [min_node_cap, machine TDP]. This is the classic critical-path
//    power shifting of job-level runtime systems.
//
// Per-node load imbalance (the reason adaptive shifting helps) is modeled
// by scaling every region's iteration cost by a deterministic per-node
// factor drawn from `load_spread`.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/arcs.hpp"
#include "kernels/apps.hpp"
#include "sim/presets.hpp"

namespace arcs::cluster {

enum class BudgetPolicy { UniformStatic, AdaptiveRebalance };

struct JobOptions {
  int nodes = 4;
  /// Total job budget in watts, divided across node package caps.
  double job_power_budget = 0.0;  ///< 0 = uncapped (every node at TDP)
  BudgetPolicy policy = BudgetPolicy::UniformStatic;
  /// Adaptive: rebalance cadence in timesteps.
  int rebalance_steps = 10;
  /// Adaptive: no node drops below this cap (watts).
  double min_node_cap = 40.0;
  /// Per-node ARCS strategy (Default = untuned nodes). OfflineReplay
  /// searches per node at its *initial* cap before the measured run.
  /// Remote resolves every node's configurations through one shared
  /// tuning service (`remote`): the first node to miss the cache drives
  /// the search, the rest reuse it — the cross-node configuration reuse
  /// of the paper's job-level story (§VI).
  TuningStrategy node_strategy = TuningStrategy::Default;
  /// Shared tuning-service client for node_strategy == Remote; must
  /// outlive run_job. Typically a serve::LocalClient over an in-process
  /// TuningServer, or a serve::SocketClient to a shared arcsd.
  RemoteTuner* remote = nullptr;
  /// Cap bucket size handed to ARCS so budget adjustments reuse sessions.
  double cap_granularity = 10.0;
  /// Relative per-node load spread: node i's region costs scale by a
  /// deterministic factor in [1, 1+load_spread].
  double load_spread = 0.25;
  std::uint64_t seed = 1;
  /// Override the app's timesteps (0 = spec value).
  int timesteps_override = 0;
  std::size_t max_search_passes = 40;
  /// Heterogeneous jobs (paper §VII future work): per-node machine
  /// specs. Empty = every node uses run_job's `machine`; otherwise the
  /// size must equal `nodes`. The budget policies account for each
  /// node's own power curve.
  std::vector<sim::MachineSpec> machines;
  /// Live job budget in watts, polled at every AdaptiveRebalance point
  /// (null = job_power_budget is fixed for the whole run). This is how
  /// a cluster-level arbiter (fleet::BudgetArbiter::budget_provider)
  /// renegotiates a running job's share mid-run: the job re-divides the
  /// fresh budget across its nodes at the next rebalance. Values are
  /// clamped to the min_node_cap * nodes floor — node caps cannot drop
  /// below the floor, so a smaller budget could not be honored anyway.
  /// A non-positive value keeps the previous budget (arbiter shutdown
  /// races resolve to "no change").
  std::function<double()> budget_provider;
};

struct NodeResult {
  std::string machine;        ///< this node's machine name
  double load_factor = 1.0;   ///< this node's cost multiplier
  double busy_time = 0.0;     ///< time inside its own timesteps
  double wait_time = 0.0;     ///< time blocked on the per-step job barrier
  double energy = 0.0;        ///< package joules
  double final_cap = 0.0;     ///< cap at job end (watts)
  /// Configuration the node's policy settled on per timestep-loop region
  /// (empty for untuned nodes / regions without a decision) — what the
  /// shared-vs-private differential tests compare.
  std::map<std::string, somp::LoopConfig> region_configs;
};

struct JobResult {
  double makespan = 0.0;      ///< job wall time (bulk-synchronous)
  double total_energy = 0.0;  ///< sum of node package energies
  std::size_t rebalances = 0;
  std::vector<NodeResult> nodes;

  /// Ratio of the slowest node's busy time to the mean (1 = balanced).
  double imbalance() const;
};

/// Runs the job to completion in virtual time.
JobResult run_job(const kernels::AppSpec& app,
                  const sim::MachineSpec& machine, const JobOptions& options);

}  // namespace arcs::cluster
