// Bounded multi-producer/multi-consumer queue.
//
// The experiment pool's injection channel: submitters block when the
// campaign is ahead of the workers (backpressure instead of unbounded
// memory growth under heavy batch traffic), workers block when idle.
// Mutex + two condition variables over a ring buffer — the queue moves
// whole experiments (milliseconds to minutes of simulation each), so
// lock cost is irrelevant next to job cost; correctness and TSan-clean
// simplicity win over a lock-free design here.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "analysis/sync.hpp"
#include "common/check.hpp"

namespace arcs::exec {

template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(std::size_t capacity) : buffer_(capacity) {
    ARCS_CHECK(capacity > 0);
  }

  /// Blocks while full. Returns false (drops the item) once closed.
  bool push(T item) {
    std::unique_lock<analysis::Mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || size_ < buffer_.size(); });
    if (closed_) return false;
    buffer_[(head_ + size_) % buffer_.size()] = std::move(item);
    ++size_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T item) {
    {
      const std::lock_guard<analysis::Mutex> lock(mu_);
      if (closed_ || size_ == buffer_.size()) return false;
      buffer_[(head_ + size_) % buffer_.size()] = std::move(item);
      ++size_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Empty optional once closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock<analysis::Mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || size_ > 0; });
    if (size_ == 0) return std::nullopt;
    return pop_locked(lock);
  }

  /// Non-blocking pop; empty optional when nothing is queued.
  std::optional<T> try_pop() {
    std::unique_lock<analysis::Mutex> lock(mu_);
    if (size_ == 0) return std::nullopt;
    return pop_locked(lock);
  }

  /// Wakes every waiter; pushes start failing, pops drain then fail.
  void close() {
    {
      const std::lock_guard<analysis::Mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    const std::lock_guard<analysis::Mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    const std::lock_guard<analysis::Mutex> lock(mu_);
    return size_;
  }

  std::size_t capacity() const { return buffer_.size(); }

 private:
  std::optional<T> pop_locked(std::unique_lock<analysis::Mutex>& lock) {
    T item = std::move(buffer_[head_]);
    head_ = (head_ + 1) % buffer_.size();
    --size_;
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  mutable analysis::Mutex mu_{"exec/queue",
                              analysis::sync::rank::kExecQueue};
  analysis::CondVar not_empty_;
  analysis::CondVar not_full_;
  std::vector<T> buffer_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace arcs::exec
