#include "exec/experiment.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "common/strings.hpp"

namespace arcs::exec {

namespace {

/// Hashes a string's bytes into the running seed (length-prefixed so
/// "ab","c" never collides with "a","bc").
std::uint64_t fold_string(std::uint64_t h, const std::string& s) {
  h = common::hash_combine(h, s.size());
  for (const char c : s)
    h = common::hash_combine(h,
                             static_cast<std::uint64_t>(
                                 static_cast<unsigned char>(c)));
  return h;
}

std::uint64_t fold_double(std::uint64_t h, double v) {
  // Bit pattern, with -0.0 canonicalized so it seeds like +0.0.
  if (v == 0.0) v = 0.0;
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  __builtin_memcpy(&bits, &v, sizeof bits);
  return common::hash_combine(h, bits);
}

}  // namespace

std::string ExperimentDesc::label() const {
  std::string out = app;
  if (!workload.empty()) out += "/" + workload;
  out += "@" + machine;
  out += " cap=" +
         (power_cap > 0 ? common::format_fixed(power_cap, 0) + "W" : "TDP");
  out += " strategy=";
  out += to_string(strategy);
  return out;
}

std::uint64_t descriptor_seed(const ExperimentDesc& desc) {
  std::uint64_t h = 0x41524353ULL;  // "ARCS"
  h = fold_string(h, common::to_lower(desc.app));
  h = fold_string(h, desc.workload);
  h = fold_string(h, common::to_lower(desc.machine));
  h = fold_double(h, desc.power_cap);
  h = common::hash_combine(h, static_cast<std::uint64_t>(desc.strategy));
  h = common::hash_combine(h, static_cast<std::uint64_t>(desc.objective));
  h = common::hash_combine(h,
                           static_cast<std::uint64_t>(desc.online_method));
  h = common::hash_combine(
      h, (desc.selective_tuning ? 1ULL : 0ULL) |
             (desc.tune_frequency ? 2ULL : 0ULL) |
             (desc.tune_placement ? 4ULL : 0ULL) |
             (desc.conditional_space ? 8ULL : 0ULL));
  h = common::hash_combine(h, static_cast<std::uint64_t>(desc.repetitions));
  h = common::hash_combine(
      h, static_cast<std::uint64_t>(desc.timesteps_override));
  h = common::hash_combine(h, desc.max_search_passes);
  h = common::hash_combine(h, desc.seed_salt);
  // Seed 0 is reserved-ish (some components treat it as "default"); keep
  // the derived seed nonzero.
  return h != 0 ? h : 0x9e3779b97f4a7c15ULL;
}

kernels::AppSpec resolve_app(const ExperimentDesc& desc) {
  const std::string name = common::to_lower(desc.app);
  const std::string& w = desc.workload;
  if (name == "sp") return kernels::sp_app(w.empty() ? "B" : w);
  if (name == "bt") return kernels::bt_app(w.empty() ? "B" : w);
  if (name == "lulesh") return kernels::lulesh_app(w.empty() ? "45" : w);
  if (name == "cg") return kernels::cg_app(w.empty() ? "B" : w);
  if (name == "synthetic") return kernels::synthetic_app();
  throw std::invalid_argument("unknown app '" + desc.app +
                              "' (SP|BT|LULESH|CG|synthetic)");
}

sim::MachineSpec resolve_machine(const ExperimentDesc& desc) {
  const std::string name = common::to_lower(desc.machine);
  if (name == "crill") return sim::crill();
  if (name == "minotaur") return sim::minotaur();
  if (name == "testbox") return sim::testbox();
  if (name == "haswell") return sim::haswell();
  throw std::invalid_argument("unknown machine '" + desc.machine +
                              "' (crill|minotaur|testbox|haswell)");
}

kernels::RunOptions run_options(const ExperimentDesc& desc,
                                const std::atomic<bool>* stop) {
  kernels::RunOptions options;
  options.strategy = desc.strategy;
  options.power_cap = desc.power_cap;
  options.objective = desc.objective;
  options.selective_tuning = desc.selective_tuning;
  options.tune_frequency = desc.tune_frequency;
  options.tune_placement = desc.tune_placement;
  options.conditional_space = desc.conditional_space;
  options.online_method = desc.online_method;
  options.max_search_passes = desc.max_search_passes;
  options.repetitions = desc.repetitions;
  options.timesteps_override = desc.timesteps_override;
  options.seed = descriptor_seed(desc);
  options.stop = stop;
  return options;
}

kernels::RunResult run_experiment(const ExperimentDesc& desc,
                                  const std::atomic<bool>* stop) {
  const kernels::AppSpec app = resolve_app(desc);
  const sim::MachineSpec machine = resolve_machine(desc);
  return kernels::run_app(app, machine, run_options(desc, stop));
}

std::vector<ExperimentOutcome> run_campaign(
    ExperimentPool& pool, const std::vector<ExperimentDesc>& descs,
    const CampaignOptions& options) {
  std::vector<std::future<JobOutcome<kernels::RunResult>>> futures;
  futures.reserve(descs.size());
  for (const ExperimentDesc& desc : descs) {
    JobOptions job;
    job.label = desc.label();
    job.timeout_seconds = options.timeout_seconds;
    futures.push_back(pool.submit(
        [desc](JobContext& ctx) {
          return run_experiment(desc, ctx.stop_token());
        },
        std::move(job)));
  }
  std::vector<ExperimentOutcome> outcomes;
  outcomes.reserve(descs.size());
  for (std::size_t i = 0; i < descs.size(); ++i) {
    JobOutcome<kernels::RunResult> job = futures[i].get();
    ExperimentOutcome out;
    out.desc = descs[i];
    out.status = job.status;
    out.error = std::move(job.error);
    out.seconds = job.seconds;
    if (job.value) out.result = std::move(*job.value);
    outcomes.push_back(std::move(out));
  }
  return outcomes;
}

common::Json run_result_to_json(const kernels::RunResult& result) {
  common::Json j = common::Json::object();
  j.set("strategy", result.strategy);
  j.set("elapsed_s", result.elapsed);
  j.set("energy_j", result.energy);
  j.set("dram_energy_j", result.dram_energy);
  j.set("search_evaluations", result.search_evaluations);
  j.set("search_passes", result.search_passes);
  j.set("blacklisted", result.blacklisted);
  common::Json regions = common::Json::object();
  for (const auto& [name, s] : result.regions) {
    common::Json r = common::Json::object();
    r.set("calls", s.calls);
    r.set("time_total_s", s.time_total);
    r.set("loop_total_s", s.loop_total);
    r.set("loop_sum_total_s", s.loop_sum_total);
    r.set("barrier_total_s", s.barrier_total);
    r.set("dispatch_total_s", s.dispatch_total);
    r.set("config_change_total_s", s.config_change_total);
    r.set("instrumentation_total_s", s.instrumentation_total);
    r.set("energy_total_j", s.energy_total);
    r.set("miss_l1", s.miss_l1);
    r.set("miss_l2", s.miss_l2);
    r.set("miss_l3", s.miss_l3);
    r.set("last_config", s.last_config.to_string());
    r.set("last_team", s.last_team);
    regions.set(name, std::move(r));
  }
  j.set("regions", std::move(regions));
  return j;
}

common::Json experiment_report(const ExperimentDesc& desc,
                               const kernels::RunResult& result) {
  common::Json j = common::Json::object();
  common::Json d = common::Json::object();
  d.set("app", desc.app);
  d.set("workload", desc.workload);
  d.set("machine", desc.machine);
  d.set("power_cap_w", desc.power_cap);
  d.set("strategy", std::string(to_string(desc.strategy)));
  d.set("repetitions", desc.repetitions);
  d.set("timesteps_override", desc.timesteps_override);
  d.set("max_search_passes", desc.max_search_passes);
  d.set("seed", std::to_string(descriptor_seed(desc)));
  j.set("descriptor", std::move(d));
  j.set("result", run_result_to_json(result));
  return j;
}

}  // namespace arcs::exec
