// Work-stealing experiment pool.
//
// Fans independent simulations out across real host threads. Architecture:
//
//  * submission goes through a bounded MPMC injection queue (queue.hpp):
//    a campaign that produces jobs faster than the workers retire them
//    blocks at the bound instead of growing without limit;
//  * each worker drains the injection queue in small batches into a
//    private deque (LIFO for cache warmth) and, when both its deque and
//    the injection queue are empty, steals the oldest job from another
//    worker (FIFO) — classic work stealing keeps long tails busy;
//  * every job gets a JobContext carrying a cooperative stop token. A
//    watchdog thread raises the token when a job outlives its wall-clock
//    timeout, and cancel_all() raises it on everything in flight, so one
//    pathological search cannot hang a campaign and a campaign can be
//    abandoned cleanly. Stopping is cooperative: simulations poll the
//    token at timestep granularity (kernels::RunOptions::stop);
//  * results come back as futures of JobOutcome<T>: Done carries the
//    value, Failed the exception text, TimedOut/Cancelled the reason the
//    token was raised. A job that throws (or times out) completes only
//    its own outcome — the pool and all other jobs are unaffected.
//
// Determinism contract: the pool schedules *when and where* a job runs,
// never *what it computes*. Jobs must derive all randomness from their
// own descriptor (see experiment.hpp's descriptor_seed), keep state
// job-local, and never read submission/completion order. Under that
// contract a batch is bit-identical to the same jobs run serially, at
// any worker count, in any submission order — tests/exec_test.cpp
// asserts exactly this.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "analysis/sync.hpp"
#include "exec/queue.hpp"
#include "telemetry/telemetry.hpp"

namespace arcs::exec {

enum class JobStatus {
  Done,       ///< ran to completion; JobOutcome::value is set
  Failed,     ///< threw; JobOutcome::error holds the exception text
  TimedOut,   ///< stop token raised by the watchdog, job gave up
  Cancelled,  ///< cancelled before or during execution
};

std::string_view to_string(JobStatus status);

class ExperimentPool;

namespace detail {

enum class StopReason : int { None = 0, Timeout = 1, Cancel = 2 };

struct JobState {
  std::string label;
  double timeout_seconds = 0.0;  ///< 0 = no timeout
  std::atomic<bool> stop{false};
  std::atomic<int> reason{static_cast<int>(StopReason::None)};

  /// First reason wins (a timeout racing a cancel is reported as
  /// whichever raised the token first).
  void request_stop(StopReason r) {
    int expected = static_cast<int>(StopReason::None);
    reason.compare_exchange_strong(expected, static_cast<int>(r));
    stop.store(true, std::memory_order_release);
  }
  StopReason stop_reason() const {
    return static_cast<StopReason>(reason.load(std::memory_order_acquire));
  }
};

struct Task {
  std::shared_ptr<JobState> state;
  std::function<void(ExperimentPool&)> run;
};

}  // namespace detail

/// Handed to every job; the job's view of the pool.
class JobContext {
 public:
  explicit JobContext(detail::JobState& state) : state_(&state) {}

  /// Wire this into kernels::RunOptions::stop (or poll it yourself in
  /// long loops). Raised on timeout or cancellation.
  const std::atomic<bool>* stop_token() const { return &state_->stop; }
  bool stop_requested() const {
    return state_->stop.load(std::memory_order_acquire);
  }
  const std::string& label() const { return state_->label; }

 private:
  detail::JobState* state_;
};

template <typename T>
struct JobOutcome {
  JobStatus status = JobStatus::Cancelled;
  std::optional<T> value;   ///< set iff status == Done
  std::string error;        ///< set iff status == Failed
  double seconds = 0.0;     ///< job wall-clock time on its worker
  bool ok() const { return status == JobStatus::Done; }
};

struct JobOptions {
  std::string label;
  /// Wall-clock budget for this job; 0 disables the watchdog for it.
  double timeout_seconds = 0.0;
};

struct PoolOptions {
  /// 0 = recommended_workers().
  std::size_t workers = 0;
  /// Injection-queue bound (submission backpressure point).
  std::size_t queue_capacity = 256;
};

struct PoolStats {
  std::size_t workers = 0;
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_done = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_timed_out = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t steals = 0;
  /// Sum of per-job wall times — what a serial run would have cost.
  /// serial_equivalent / campaign wall = host-parallelism speedup.
  double busy_seconds = 0.0;
};

class ExperimentPool {
 public:
  explicit ExperimentPool(PoolOptions options = {});
  /// Drains every submitted job, then joins the workers.
  ~ExperimentPool();

  ExperimentPool(const ExperimentPool&) = delete;
  ExperimentPool& operator=(const ExperimentPool&) = delete;

  /// Submits a job. `fn` is invoked as fn(JobContext&) on a worker
  /// thread and must return a (non-void) value. Blocks when the
  /// injection queue is at capacity. After shutdown() or cancel_all(),
  /// the returned future completes immediately as Cancelled.
  template <typename F>
  auto submit(F fn, JobOptions options = {})
      -> std::future<JobOutcome<std::invoke_result_t<F&, JobContext&>>> {
    using T = std::invoke_result_t<F&, JobContext&>;
    static_assert(!std::is_void_v<T>,
                  "experiment jobs must return their result");
    auto state = std::make_shared<detail::JobState>();
    state->label = std::move(options.label);
    state->timeout_seconds = options.timeout_seconds;
    auto promise = std::make_shared<std::promise<JobOutcome<T>>>();
    std::future<JobOutcome<T>> future = promise->get_future();

    detail::Task task;
    task.state = state;
    task.run = [fn = std::move(fn), promise, state](ExperimentPool& pool) {
      JobOutcome<T> outcome;
      const auto t0 = std::chrono::steady_clock::now();
      if (pool.cancelling() || state->stop_reason() ==
                                   detail::StopReason::Cancel) {
        outcome.status = JobStatus::Cancelled;
      } else {
        pool.begin_job(state);
        // The job's host-time span; nested work (client RPCs, traced
        // runtimes) inherits it as the causal parent on this thread.
        const telemetry::ScopedSpan span(
            telemetry::Category::Exec,
            state->label.empty() ? std::string("job") : state->label);
        try {
          JobContext ctx(*state);
          outcome.value = fn(ctx);
          outcome.status = JobStatus::Done;
        } catch (const std::exception& e) {
          outcome.status = stopped_status(*state);
          if (outcome.status == JobStatus::Failed) outcome.error = e.what();
        } catch (...) {
          outcome.status = stopped_status(*state);
          if (outcome.status == JobStatus::Failed)
            outcome.error = "unknown exception";
        }
        pool.end_job(state);
      }
      outcome.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      pool.record_outcome(outcome.status, outcome.seconds);
      promise->set_value(std::move(outcome));
    };

    if (!enqueue(std::move(task))) {
      JobOutcome<T> cancelled;
      cancelled.status = JobStatus::Cancelled;
      record_outcome(JobStatus::Cancelled, 0.0);
      promise->set_value(std::move(cancelled));
    }
    return future;
  }

  /// Raises every in-flight and queued job's stop token. Jobs already
  /// running finish at their next poll point as Cancelled; queued jobs
  /// never start. Submission stays open (new jobs complete Cancelled
  /// until the flag is lowered via reset_cancel()).
  void cancel_all();
  /// Re-arms the pool after cancel_all().
  void reset_cancel();
  bool cancelling() const {
    return cancel_.load(std::memory_order_acquire);
  }

  /// Closes submission and waits for every queued job to finish.
  void shutdown();

  std::size_t workers() const { return threads_.size(); }
  PoolStats stats() const;

  /// Worker-thread count used when PoolOptions::workers == 0:
  /// ARCS_EXEC_WORKERS env override, else std::thread::hardware_concurrency.
  static std::size_t recommended_workers();

 private:
  friend struct detail::Task;

  static JobStatus stopped_status(const detail::JobState& state) {
    switch (state.stop_reason()) {
      case detail::StopReason::Timeout:
        return JobStatus::TimedOut;
      case detail::StopReason::Cancel:
        return JobStatus::Cancelled;
      case detail::StopReason::None:
        break;
    }
    return JobStatus::Failed;
  }

  bool enqueue(detail::Task task);
  void worker_main(std::size_t wid);
  std::optional<detail::Task> next_task(std::size_t wid);
  std::optional<detail::Task> pop_local(std::size_t wid);
  bool refill_from_injection(std::size_t wid);
  std::optional<detail::Task> steal(std::size_t thief);

  // Job-lifecycle hooks used by the submit() wrapper.
  void begin_job(const std::shared_ptr<detail::JobState>& state);
  void end_job(const std::shared_ptr<detail::JobState>& state);
  void record_outcome(JobStatus status, double seconds);
  void watchdog_main();

  struct Worker {
    // One class for all workers: steal() takes a *victim's* lock with no
    // other worker lock held (pop_local releases before stealing), so no
    // two instances ever nest.
    analysis::Mutex mu{"exec/pool/worker",
                       analysis::sync::rank::kExecPoolWorker};
    std::deque<detail::Task> deque;
  };

  BoundedMpmcQueue<detail::Task> injection_;
  std::vector<std::unique_ptr<Worker>> locals_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> local_items_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> cancel_{false};

  analysis::Mutex idle_mu_{"exec/pool/idle",
                           analysis::sync::rank::kExecPoolIdle};
  analysis::CondVar idle_cv_;

  // Watchdog: running jobs with deadlines, ordered by expiry.
  std::thread watchdog_;
  analysis::Mutex wd_mu_{"exec/pool/watchdog",
                         analysis::sync::rank::kExecPoolWatchdog};
  analysis::CondVar wd_cv_;
  std::vector<std::pair<std::chrono::steady_clock::time_point,
                        std::shared_ptr<detail::JobState>>>
      wd_jobs_;
  bool wd_exit_ = false;

  // Running-job registry (for cancel_all) and stats. Ranked above the
  // worker locks: steal() bumps the steal counter under a victim's lock.
  mutable analysis::Mutex stats_mu_{"exec/pool/stats",
                                    analysis::sync::rank::kExecPoolStats};
  std::vector<std::shared_ptr<detail::JobState>> running_;
  PoolStats stats_;
};

}  // namespace arcs::exec
