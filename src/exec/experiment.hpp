// Experiment descriptors and campaigns.
//
// An ExperimentDesc names one (app, workload, machine preset, power cap,
// strategy, ...) simulation — the unit every paper artifact is built
// from. The determinism contract of the whole exec layer lives here:
//
//   seed-from-descriptor rule: an experiment's RNG seed is derived by
//   hashing the descriptor's fields (descriptor_seed), never taken from
//   submission order, completion order, worker id, or a clock. Two runs
//   of the same descriptor are bit-identical whether they execute
//   serially, on 1 worker, or on 8 — and a shuffled batch produces the
//   same results as an ordered one.
//
// run_experiment() executes one descriptor (cooperatively cancellable);
// run_campaign() fans a descriptor list across an ExperimentPool and
// returns outcomes in *descriptor order*, so callers keep deterministic
// output without caring about completion order.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "exec/pool.hpp"
#include "kernels/apps.hpp"
#include "kernels/driver.hpp"
#include "sim/presets.hpp"

namespace arcs::exec {

struct ExperimentDesc {
  std::string app = "synthetic";  ///< SP|BT|LULESH|CG|synthetic (any case)
  std::string workload;           ///< "" = the app's default workload
  std::string machine = "crill";  ///< crill|minotaur|testbox|haswell
  double power_cap = 0.0;         ///< watts; 0 = TDP/uncapped
  TuningStrategy strategy = TuningStrategy::Default;
  Objective objective = Objective::Time;
  harmony::StrategyKind online_method = harmony::StrategyKind::NelderMead;
  bool selective_tuning = false;
  bool tune_frequency = false;
  bool tune_placement = false;
  /// Conditional Table-I space: chunk active only under dynamic/guided.
  bool conditional_space = false;
  int repetitions = 1;
  int timesteps_override = 0;
  std::size_t max_search_passes = 60;
  /// Folded into the seed: distinguishes deliberate re-runs of an
  /// otherwise identical descriptor (e.g. noise studies).
  std::uint64_t seed_salt = 0;

  /// "SP/B@crill cap=85 strategy=online" — label for logs and reports.
  std::string label() const;
};

/// The seed-from-descriptor rule. Stable across processes and platforms
/// (pure integer hashing of the descriptor's bytes, no pointers, no
/// std::hash).
std::uint64_t descriptor_seed(const ExperimentDesc& desc);

/// Resolves the descriptor's app name ("SP", "bt", "synthetic", ...).
/// Throws std::invalid_argument on an unknown name.
kernels::AppSpec resolve_app(const ExperimentDesc& desc);

/// Resolves the descriptor's machine preset name.
/// Throws std::invalid_argument on an unknown name.
sim::MachineSpec resolve_machine(const ExperimentDesc& desc);

/// Builds the RunOptions run_experiment would use (seed included) —
/// exposed so differential tests can drive kernels::run_app directly.
kernels::RunOptions run_options(const ExperimentDesc& desc,
                                const std::atomic<bool>* stop = nullptr);

/// Executes one experiment. `stop` is the cooperative cancellation
/// token (kernels::Aborted is thrown at the next timestep once raised).
kernels::RunResult run_experiment(const ExperimentDesc& desc,
                                  const std::atomic<bool>* stop = nullptr);

struct ExperimentOutcome {
  ExperimentDesc desc;
  JobStatus status = JobStatus::Cancelled;
  kernels::RunResult result;  ///< valid iff status == Done
  std::string error;          ///< set iff status == Failed
  double seconds = 0.0;       ///< job wall-clock on its worker
  bool ok() const { return status == JobStatus::Done; }
};

struct CampaignOptions {
  /// Per-experiment wall-clock budget; 0 = none.
  double timeout_seconds = 0.0;
};

/// Fans the descriptors across the pool; blocks until all complete (or
/// fail/time out/get cancelled) and returns outcomes in input order.
std::vector<ExperimentOutcome> run_campaign(
    ExperimentPool& pool, const std::vector<ExperimentDesc>& descs,
    const CampaignOptions& options = {});

/// Canonical JSON for one run — the golden-file fingerprint. Field-by-
/// field stable: ordered keys, regions sorted by name (map order).
common::Json run_result_to_json(const kernels::RunResult& result);

/// Canonical JSON for (descriptor, result) — what golden tests check in.
common::Json experiment_report(const ExperimentDesc& desc,
                               const kernels::RunResult& result);

}  // namespace arcs::exec
