#include "exec/pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace arcs::exec {

namespace {

/// How many injection-queue entries a worker claims at once. Batching is
/// what creates stealable local work: the tail of a batch sits in the
/// worker's deque where idle peers can take it FIFO.
constexpr std::size_t kInjectionBatch = 4;

/// Idle-worker poll period. Workers are woken eagerly via the idle
/// condvar; the timeout only bounds the steal-recheck latency when a
/// wakeup is missed between the empty-check and the wait.
constexpr std::chrono::milliseconds kIdleWait{5};

}  // namespace

std::string_view to_string(JobStatus status) {
  switch (status) {
    case JobStatus::Done:
      return "done";
    case JobStatus::Failed:
      return "failed";
    case JobStatus::TimedOut:
      return "timed_out";
    case JobStatus::Cancelled:
      return "cancelled";
  }
  return "?";
}

std::size_t ExperimentPool::recommended_workers() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at pool start,
  // before workers exist; nothing writes the environment concurrently.
  if (const char* env = std::getenv("ARCS_EXEC_WORKERS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(std::min(n, 512L));
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

ExperimentPool::ExperimentPool(PoolOptions options)
    : injection_(options.queue_capacity) {
  const std::size_t n =
      options.workers > 0 ? options.workers : recommended_workers();
  locals_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    locals_.push_back(std::make_unique<Worker>());
  {
    const std::lock_guard<analysis::Mutex> lock(stats_mu_);
    stats_.workers = n;
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_main(i); });
  watchdog_ = std::thread([this] { watchdog_main(); });
}

ExperimentPool::~ExperimentPool() { shutdown(); }

bool ExperimentPool::enqueue(detail::Task task) {
  if (shutdown_.load(std::memory_order_acquire)) return false;
  {
    const std::lock_guard<analysis::Mutex> lock(stats_mu_);
    ++stats_.jobs_submitted;
  }
  if (cancel_.load(std::memory_order_acquire))
    task.state->request_stop(detail::StopReason::Cancel);
  if (!injection_.push(std::move(task))) {
    const std::lock_guard<analysis::Mutex> lock(stats_mu_);
    --stats_.jobs_submitted;
    return false;
  }
  idle_cv_.notify_one();
  return true;
}

void ExperimentPool::shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) {
    // Second caller (e.g. the destructor after an explicit shutdown):
    // workers are already gone.
    return;
  }
  injection_.close();
  idle_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  {
    const std::lock_guard<analysis::Mutex> lock(wd_mu_);
    wd_exit_ = true;
  }
  wd_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

void ExperimentPool::cancel_all() {
  cancel_.store(true, std::memory_order_release);
  // Raise the token on everything currently executing; queued tasks are
  // caught by the cancel_ check in the job wrapper when they surface.
  const std::lock_guard<analysis::Mutex> lock(stats_mu_);
  for (const auto& state : running_)
    state->request_stop(detail::StopReason::Cancel);
}

void ExperimentPool::reset_cancel() {
  cancel_.store(false, std::memory_order_release);
}

PoolStats ExperimentPool::stats() const {
  const std::lock_guard<analysis::Mutex> lock(stats_mu_);
  return stats_;
}

void ExperimentPool::worker_main(std::size_t wid) {
  telemetry::Tracer::instance().name_host_thread(
      "exec worker " + std::to_string(wid));
  for (;;) {
    std::optional<detail::Task> task = next_task(wid);
    if (!task) return;
    task->run(*this);
  }
}

std::optional<detail::Task> ExperimentPool::next_task(std::size_t wid) {
  for (;;) {
    if (auto task = pop_local(wid)) return task;
    if (refill_from_injection(wid)) continue;
    if (auto task = steal(wid)) return task;
    std::unique_lock<analysis::Mutex> lock(idle_mu_);
    if (shutdown_.load(std::memory_order_acquire) &&
        injection_.size() == 0 &&
        local_items_.load(std::memory_order_acquire) == 0)
      return std::nullopt;
    idle_cv_.wait_for(lock, kIdleWait, [&] {
      return shutdown_.load(std::memory_order_acquire) ||
             injection_.size() > 0 ||
             local_items_.load(std::memory_order_acquire) > 0;
    });
  }
}

std::optional<detail::Task> ExperimentPool::pop_local(std::size_t wid) {
  Worker& w = *locals_[wid];
  const std::lock_guard<analysis::Mutex> lock(w.mu);
  if (w.deque.empty()) return std::nullopt;
  detail::Task task = std::move(w.deque.back());
  w.deque.pop_back();
  local_items_.fetch_sub(1, std::memory_order_acq_rel);
  return task;
}

bool ExperimentPool::refill_from_injection(std::size_t wid) {
  Worker& w = *locals_[wid];
  std::size_t claimed = 0;
  for (std::size_t i = 0; i < kInjectionBatch; ++i) {
    std::optional<detail::Task> task = injection_.try_pop();
    if (!task) break;
    {
      const std::lock_guard<analysis::Mutex> lock(w.mu);
      w.deque.push_back(std::move(*task));
    }
    local_items_.fetch_add(1, std::memory_order_acq_rel);
    ++claimed;
  }
  if (claimed > 1) idle_cv_.notify_one();  // surplus is stealable
  return claimed > 0;
}

std::optional<detail::Task> ExperimentPool::steal(std::size_t thief) {
  const std::size_t n = locals_.size();
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t victim = (thief + i) % n;
    Worker& w = *locals_[victim];
    const std::lock_guard<analysis::Mutex> lock(w.mu);
    if (w.deque.empty()) continue;
    detail::Task task = std::move(w.deque.front());
    w.deque.pop_front();
    local_items_.fetch_sub(1, std::memory_order_acq_rel);
    {
      const std::lock_guard<analysis::Mutex> stats_lock(stats_mu_);
      ++stats_.steals;
    }
    return task;
  }
  return std::nullopt;
}

void ExperimentPool::begin_job(
    const std::shared_ptr<detail::JobState>& state) {
  {
    const std::lock_guard<analysis::Mutex> lock(stats_mu_);
    running_.push_back(state);
  }
  if (state->timeout_seconds > 0.0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(state->timeout_seconds));
    {
      const std::lock_guard<analysis::Mutex> lock(wd_mu_);
      wd_jobs_.emplace_back(deadline, state);
    }
    wd_cv_.notify_one();
  }
}

void ExperimentPool::end_job(
    const std::shared_ptr<detail::JobState>& state) {
  {
    const std::lock_guard<analysis::Mutex> lock(stats_mu_);
    running_.erase(std::remove(running_.begin(), running_.end(), state),
                   running_.end());
  }
  if (state->timeout_seconds > 0.0) {
    const std::lock_guard<analysis::Mutex> lock(wd_mu_);
    wd_jobs_.erase(
        std::remove_if(wd_jobs_.begin(), wd_jobs_.end(),
                       [&](const auto& entry) {
                         return entry.second == state;
                       }),
        wd_jobs_.end());
  }
}

void ExperimentPool::record_outcome(JobStatus status, double seconds) {
  const std::lock_guard<analysis::Mutex> lock(stats_mu_);
  switch (status) {
    case JobStatus::Done:
      ++stats_.jobs_done;
      break;
    case JobStatus::Failed:
      ++stats_.jobs_failed;
      break;
    case JobStatus::TimedOut:
      ++stats_.jobs_timed_out;
      break;
    case JobStatus::Cancelled:
      ++stats_.jobs_cancelled;
      break;
  }
  stats_.busy_seconds += seconds;
}

void ExperimentPool::watchdog_main() {
  std::unique_lock<analysis::Mutex> lock(wd_mu_);
  for (;;) {
    if (wd_exit_) return;
    if (wd_jobs_.empty()) {
      wd_cv_.wait(lock, [&] { return wd_exit_ || !wd_jobs_.empty(); });
      continue;
    }
    auto nearest = std::min_element(
        wd_jobs_.begin(), wd_jobs_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    const auto deadline = nearest->first;
    if (std::chrono::steady_clock::now() >= deadline) {
      nearest->second->request_stop(detail::StopReason::Timeout);
      wd_jobs_.erase(nearest);
      continue;
    }
    wd_cv_.wait_until(lock, deadline);
  }
}

}  // namespace arcs::exec
