// Region specifications: the bridge from a workload model to the runtime.
//
// A RegionSpec is everything config-independent about one OpenMP parallel
// region: how many iterations, how expensive each is (with what imbalance
// shape), and how it touches memory. build() materializes it into the
// somp::RegionWork the runtime executes.
#pragma once

#include <string>
#include <vector>

#include "kernels/imbalance.hpp"
#include "sim/cache.hpp"
#include "somp/runtime.hpp"

namespace arcs::kernels {

struct RegionSpec {
  std::string name;
  std::int64_t iterations = 0;
  double cycles_per_iter = 0;
  ImbalanceSpec imbalance;
  sim::MemoryBehavior memory;
  /// reduction(...) clause on the loop.
  bool has_reduction = false;

  /// Materializes the cost profile (deterministic for a given spec).
  somp::RegionWork build(std::uint64_t codeptr) const;
};

/// Convenience for tests and examples: a uniform compute-bound region.
RegionSpec simple_region(std::string name, std::int64_t iterations,
                         double cycles_per_iter);

}  // namespace arcs::kernels
