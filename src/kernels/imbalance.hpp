// Iteration-cost imbalance profiles.
//
// The paper's analysis attributes tuning opportunity to load imbalance and
// cache behavior. These generators synthesize per-iteration compute costs
// with the imbalance shapes seen in the proxy apps:
//
//  * None         — perfectly uniform (LULESH CalcKinematics-like);
//  * Ramp         — cost grows linearly across the iteration space
//                   (boundary-layer style; punishes default static);
//  * Step         — a fraction of iterations is heavier (material regions,
//                   LULESH EvalEOS-like);
//  * RandomBlocks — block-wise lognormal variation (mesh irregularity;
//                   worst-thread excess grows with team size, the effect
//                   the paper sees for LULESH on Minotaur's 160 threads);
//  * GaussianBump — a localized heavy band (shock front).
//
// All profiles are normalized so the *total* cycles equal
// iterations x base_cycles, making configurations comparable.
#pragma once

#include <cstdint>
#include <vector>

namespace arcs::kernels {

enum class ImbalanceKind { None, Ramp, Step, RandomBlocks, GaussianBump };

struct ImbalanceSpec {
  ImbalanceKind kind = ImbalanceKind::None;
  /// Shape strength: Ramp — last/first cost ratio is 1+2*magnitude;
  /// Step — heavy iterations cost (1+magnitude) x the light ones;
  /// RandomBlocks — sigma of the lognormal block factor;
  /// GaussianBump — peak adds magnitude x base at the bump center.
  double magnitude = 0.0;
  /// Step: fraction of heavy iterations. GaussianBump: relative width.
  double fraction = 0.25;
  /// RandomBlocks: iterations per block.
  std::int64_t block = 64;
  std::uint64_t seed = 42;
};

/// Builds the per-iteration cycle vector (length `iterations`, total
/// = iterations * base_cycles up to rounding).
std::vector<double> make_cost_vector(std::int64_t iterations,
                                     double base_cycles,
                                     const ImbalanceSpec& spec);

}  // namespace arcs::kernels
