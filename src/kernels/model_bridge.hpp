// Bridge from kernels' workload models to the model layer.
//
// The model library sits *below* kernels in the stack (so core/serve can
// use it without dragging in workload models); this header provides the
// kernels-side adapters: turning a RegionSpec into the model's
// config-independent RegionDescriptor, resolving HistoryKeys against the
// built-in app specs and machine presets, and distilling a sweep outcome
// into a training example.
#pragma once

#include <optional>
#include <string>

#include "kernels/apps.hpp"
#include "kernels/driver.hpp"
#include "model/dataset.hpp"
#include "model/features.hpp"

namespace arcs::kernels {

/// Config-independent descriptor of a region spec (feature-extractor
/// input).
model::RegionDescriptor describe_region(const RegionSpec& spec);

/// A DescriptorResolver over the built-in applications (SP, BT, LULESH,
/// CG, synthetic — matched case-insensitively by HistoryKey::app, with
/// HistoryKey::workload selecting the class/mesh) and the machine
/// presets. Keys naming anything else resolve to nullopt. Stateless and
/// thread-safe.
model::DescriptorResolver model_resolver();

/// One measured sweep outcome as a training example.
model::Example example_from_outcome(const AppSpec& app,
                                    const RegionSpec& spec,
                                    const sim::MachineSpec& machine,
                                    double power_cap,
                                    const ConfigOutcome& outcome);

}  // namespace arcs::kernels
