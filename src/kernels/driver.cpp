#include "kernels/driver.hpp"

#include <algorithm>
#include <memory>

#include "common/check.hpp"
#include "common/log.hpp"

namespace arcs::kernels {

namespace {

/// Idle time granted after programming a cap so the RAPL limit settles
/// (the paper's "warm up period after enforcing a power cap").
constexpr common::Seconds kCapSettleIdle = 0.05;

struct BuiltApp {
  std::vector<somp::RegionWork> setup;
  std::vector<somp::RegionWork> loop;
};

BuiltApp build_app(const AppSpec& app) {
  BuiltApp built;
  std::uint64_t codeptr = 1;
  for (const auto& spec : app.setup_regions)
    built.setup.push_back(spec.build(codeptr++));
  codeptr = 1000;
  for (const auto& spec : app.regions)
    built.loop.push_back(spec.build(codeptr++));
  return built;
}

void accumulate(RunResult& result, const std::string& name,
                const somp::ExecutionRecord& rec) {
  RegionRunStats& s = result.regions[name];
  s.name = name;
  ++s.calls;
  s.time_total += rec.duration;
  s.loop_total += rec.loop_time_max;
  s.loop_sum_total += rec.loop_time_sum;
  s.barrier_total += rec.barrier_time_total;
  s.dispatch_total += rec.dispatch_time_total;
  s.config_change_total += rec.config_change_time;
  s.instrumentation_total += rec.instrumentation_time;
  s.energy_total += rec.energy;
  s.miss_l1 += rec.cache.miss_l1 * rec.duration;
  s.miss_l2 += rec.cache.miss_l2 * rec.duration;
  s.miss_l3 += rec.cache.miss_l3 * rec.duration;
  s.last_config = somp::LoopConfig{
      rec.team_size, somp::LoopSchedule{rec.kind, rec.chunk}};
  s.last_team = rec.team_size;
}

void finalize_miss_rates(RunResult& result) {
  for (auto& [name, s] : result.regions) {
    if (s.time_total <= 0) continue;
    s.miss_l1 /= s.time_total;
    s.miss_l2 /= s.time_total;
    s.miss_l3 /= s.time_total;
  }
}

void throw_if_stopped(const std::atomic<bool>* stop) {
  if (stop != nullptr && stop->load(std::memory_order_relaxed))
    throw Aborted("experiment stop requested");
}

/// Executes the whole application once; optionally accumulates stats and
/// applies a dynamic cap schedule (paper §II's changing power budgets).
void run_app_once(const AppSpec& app, const BuiltApp& built,
                  somp::Runtime& runtime, int timesteps, RunResult* collect,
                  const std::vector<std::pair<int, double>>& cap_schedule =
                      {},
                  const std::atomic<bool>* stop = nullptr) {
  throw_if_stopped(stop);
  for (const auto& work : built.setup) {
    const auto rec = runtime.parallel_for(work);
    if (collect) accumulate(*collect, work.id.name, rec);
  }
  auto next_change = cap_schedule.begin();
  for (int step = 0; step < timesteps; ++step) {
    throw_if_stopped(stop);
    while (next_change != cap_schedule.end() &&
           next_change->first <= step) {
      if (next_change->second > 0)
        runtime.machine().set_power_cap(next_change->second);
      else
        runtime.machine().clear_power_cap();
      runtime.machine().advance_idle(kCapSettleIdle);
      ++next_change;
    }
    for (const std::size_t idx : app.step_sequence) {
      ARCS_CHECK(idx < built.loop.size());
      const auto rec = runtime.parallel_for(built.loop[idx]);
      if (collect) accumulate(*collect, built.loop[idx].id.name, rec);
    }
    runtime.serial_compute(app.serial_cycles_per_step);
  }
}

sim::Machine make_machine(const sim::MachineSpec& spec, double power_cap) {
  // Search phases and region probes run noise-free: the paper's search
  // measures each configuration once, and the landscape tools need
  // deterministic ground truth.
  sim::MachineSpec quiet = spec;
  quiet.os_jitter_sigma = 0.0;
  sim::Machine machine{quiet};
  if (power_cap > 0) {
    machine.set_power_cap(power_cap);
    machine.advance_idle(kCapSettleIdle);
  }
  return machine;
}

ArcsOptions make_policy_options(const AppSpec& app, const RunOptions& opts,
                                TuningStrategy strategy) {
  ArcsOptions policy_opts;
  policy_opts.strategy = strategy;
  policy_opts.online_method = opts.online_method;
  policy_opts.objective = opts.objective;
  policy_opts.selective_tuning = opts.selective_tuning;
  policy_opts.tune_frequency = opts.tune_frequency;
  policy_opts.tune_placement = opts.tune_placement;
  policy_opts.conditional_space = opts.conditional_space;
  policy_opts.surrogate = opts.surrogate;
  policy_opts.portfolio = opts.portfolio;
  policy_opts.search.seed = opts.seed;
  policy_opts.app_name = app.name;
  policy_opts.workload = app.workload;
  policy_opts.predictor = opts.predictor;
  policy_opts.remote = opts.remote;
  policy_opts.remote_timeout_ms = opts.remote_timeout_ms;
  return policy_opts;
}

}  // namespace

RunResult run_app(const AppSpec& app, const sim::MachineSpec& machine_spec,
                  const RunOptions& options) {
  const BuiltApp built = build_app(app);
  const int timesteps =
      options.timesteps_override > 0 ? options.timesteps_override
                                     : app.timesteps;
  RunResult result;
  result.strategy = std::string(to_string(options.strategy));

  // --- Phase 1 (offline only): exhaustive search execution(s). ---
  HistoryStore history;
  if (options.strategy == TuningStrategy::OfflineReplay) {
    if (options.reuse_history != nullptr) {
      history = *options.reuse_history;
    } else {
      sim::Machine machine = make_machine(machine_spec, options.power_cap);
      somp::Runtime runtime{machine};
      if (options.runtime_hook) options.runtime_hook(runtime);
      apex::Apex apex{runtime};
      ArcsPolicy policy{
          apex, runtime,
          make_policy_options(app, options, TuningStrategy::OfflineSearch),
          &history};
      // Stop once every timestep-loop region has converged; setup
      // regions run once per execution and would take one pass per
      // evaluation — their best-so-far is saved as-is.
      auto loop_regions_converged = [&] {
        for (const auto& spec : app.regions)
          if (!policy.region_converged(spec.name)) return false;
        return true;
      };
      std::size_t passes = 0;
      while (passes < options.max_search_passes) {
        run_app_once(app, built, runtime, timesteps, nullptr, {},
                     options.stop);
        ++passes;
        if (loop_regions_converged()) break;
      }
      if (!loop_regions_converged())
        common::log_warn() << app.name
                           << ": offline search hit the pass budget before "
                              "full convergence; saving best-so-far";
      policy.save_history();
      result.search_passes = passes;
      result.search_evaluations = policy.total_evaluations();
      result.blacklisted = policy.blacklisted_regions();
    }
    result.history = history;
  }

  // --- Phase 2: the measured execution(s). ---
  // Paper protocol: repeat the measured run, then report the mean
  // (dedicated machine) or the min (shared machine) over repetitions;
  // each repetition sees a different OS-jitter stream.
  ARCS_CHECK(options.repetitions >= 1);
  RepetitionStat stat = options.repetition_stat;
  if (stat == RepetitionStat::Auto)
    stat = machine_spec.os_jitter_sigma > 0.02 ? RepetitionStat::Min
                                               : RepetitionStat::Mean;

  std::vector<RunResult> reps;
  for (int rep = 0; rep < options.repetitions; ++rep) {
    RunResult r;
    r.strategy = result.strategy;
    sim::Machine machine(machine_spec,
                         options.seed + static_cast<std::uint64_t>(rep));
    if (options.power_cap > 0) {
      machine.set_power_cap(options.power_cap);
      machine.advance_idle(kCapSettleIdle);
    }
    somp::Runtime runtime{machine};
    if (options.runtime_hook) options.runtime_hook(runtime);
    std::unique_ptr<apex::Apex> apex;
    std::unique_ptr<ArcsPolicy> policy;
    if (options.strategy != TuningStrategy::Default) {
      apex = std::make_unique<apex::Apex>(runtime);
      const TuningStrategy measured_strategy =
          options.strategy == TuningStrategy::OfflineReplay
              ? TuningStrategy::OfflineReplay
              : options.strategy;
      policy = std::make_unique<ArcsPolicy>(
          *apex, runtime,
          make_policy_options(app, options, measured_strategy), &history);
    }

    const common::Seconds t0 = machine.now();
    const common::Joules e0 = machine.energy();
    const common::Joules d0 = machine.dram_energy();
    run_app_once(app, built, runtime, timesteps, &r, options.cap_schedule,
                 options.stop);
    r.elapsed = machine.now() - t0;
    r.energy = machine.energy() - e0;
    r.dram_energy = machine.dram_energy() - d0;
    if (policy && (options.strategy == TuningStrategy::Online ||
                   options.strategy == TuningStrategy::Predicted)) {
      r.search_evaluations = policy->total_evaluations();
      r.blacklisted = policy->blacklisted_regions();
      r.model_seeded = policy->model_seeded_regions();
      policy->save_history();  // paper: save bests at program completion
    } else if (policy && options.strategy == TuningStrategy::Remote) {
      // Evaluations this client performed for the shared service; the
      // best configurations live in the service's cache, not here.
      r.search_evaluations = policy->total_evaluations();
    }
    finalize_miss_rates(r);
    reps.push_back(std::move(r));
  }

  // Aggregate: Min = the fastest repetition wholesale; Mean = averaged
  // scalars with the first repetition's region detail.
  std::size_t pick = 0;
  if (stat == RepetitionStat::Min) {
    for (std::size_t i = 1; i < reps.size(); ++i)
      if (reps[i].elapsed < reps[pick].elapsed) pick = i;
  }
  RunResult measured = std::move(reps[pick]);
  if (stat == RepetitionStat::Mean && reps.size() > 1) {
    double t = 0.0, e = 0.0, d = 0.0;
    for (std::size_t i = 0; i < reps.size(); ++i) {
      t += (i == pick) ? measured.elapsed : reps[i].elapsed;
      e += (i == pick) ? measured.energy : reps[i].energy;
      d += (i == pick) ? measured.dram_energy : reps[i].dram_energy;
    }
    const auto n = static_cast<double>(reps.size());
    measured.elapsed = t / n;
    measured.energy = e / n;
    measured.dram_energy = d / n;
  }

  measured.strategy = result.strategy;
  measured.search_passes = result.search_passes;
  if (options.strategy != TuningStrategy::Online &&
      options.strategy != TuningStrategy::Remote &&
      options.strategy != TuningStrategy::Predicted) {
    measured.search_evaluations = result.search_evaluations;
    measured.blacklisted = result.blacklisted;
  }
  measured.history = history;
  return measured;
}

ConfigOutcome run_region_once(const AppSpec& app,
                              const std::string& region_name,
                              const sim::MachineSpec& machine_spec,
                              double power_cap,
                              const somp::LoopConfig& config) {
  const RegionSpec& spec = app.region(region_name);
  const somp::RegionWork work = spec.build(1);
  sim::Machine machine = make_machine(machine_spec, power_cap);
  somp::Runtime runtime{machine};
  runtime.apply_config(config);
  ConfigOutcome out;
  out.config = config;
  out.record = runtime.parallel_for(work);
  return out;
}

std::vector<ConfigOutcome> sweep_region(const AppSpec& app,
                                        const std::string& region_name,
                                        const sim::MachineSpec& machine_spec,
                                        double power_cap, bool conditional) {
  const harmony::SearchSpace space =
      arcs_search_space(machine_spec, false, false, conditional);
  std::vector<ConfigOutcome> outcomes;
  outcomes.reserve(space.num_canonical_points());
  harmony::Point p = space.canonical_origin();
  do {
    const somp::LoopConfig config = config_from_values(space.decode(p));
    outcomes.push_back(
        run_region_once(app, region_name, machine_spec, power_cap, config));
  } while (space.advance_canonical(p));
  return outcomes;
}

const ConfigOutcome& best_outcome(const std::vector<ConfigOutcome>& sweep) {
  ARCS_CHECK(!sweep.empty());
  return *std::min_element(sweep.begin(), sweep.end(),
                           [](const ConfigOutcome& a, const ConfigOutcome& b) {
                             return a.record.duration < b.record.duration;
                           });
}

}  // namespace arcs::kernels
