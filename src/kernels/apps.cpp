#include "kernels/apps.hpp"

#include <cmath>

#include "common/check.hpp"

namespace arcs::kernels {

namespace {

sim::MemoryBehavior mem(double footprint_bytes, double access_bytes,
                        double reuse_window, double stride, double m1,
                        double m2, double m3, double mlp = 4.0) {
  sim::MemoryBehavior b;
  b.bytes_per_iter = footprint_bytes;
  b.access_bytes_per_iter = access_bytes;
  b.reuse_window = reuse_window;
  b.stride_factor = stride;
  b.base_miss_l1 = m1;
  b.base_miss_l2 = m2;
  b.base_miss_l3 = m3;
  b.mlp = mlp;
  return b;
}

ImbalanceSpec blocks(double sigma, std::int64_t block, std::uint64_t seed) {
  ImbalanceSpec s;
  s.kind = ImbalanceKind::RandomBlocks;
  s.magnitude = sigma;
  s.block = block;
  s.seed = seed;
  return s;
}

ImbalanceSpec step_imbalance(double magnitude, double fraction) {
  ImbalanceSpec s;
  s.kind = ImbalanceKind::Step;
  s.magnitude = magnitude;
  s.fraction = fraction;
  return s;
}

RegionSpec small_region(std::string name, std::int64_t iters, double scale) {
  RegionSpec r;
  r.name = std::move(name);
  r.iterations = iters;
  r.cycles_per_iter = 1.0e7 * scale;
  r.memory = mem(4e5 * scale, 2e7 * scale, 2, 1.0, 0.04, 0.015, 0.006);
  return r;
}

}  // namespace

const RegionSpec& AppSpec::region(const std::string& region_name) const {
  for (const auto& r : regions)
    if (r.name == region_name) return r;
  for (const auto& r : setup_regions)
    if (r.name == region_name) return r;
  ARCS_CHECK_MSG(false, name + ": unknown region " + region_name);
  return regions.front();  // unreachable
}

AppSpec sp_app(const std::string& workload) {
  ARCS_CHECK_MSG(workload == "B" || workload == "C",
                 "SP workloads are B and C");
  // Class B solves a 102^3 grid, class C 162^3 (paper §IV.C); the outer
  // parallel loops run over one grid dimension, per-iteration work scales
  // with the plane size.
  const std::int64_t grid = workload == "B" ? 102 : 162;
  const double s = std::pow(static_cast<double>(grid) / 102.0, 2.0);
  // Larger grids have proportionally stronger block variance (boundary
  // layers span more planes) — calibrated so class C's tuning headroom
  // matches the paper's (~40%).
  const double imb = workload == "B" ? 1.0 : 1.25;

  AppSpec app;
  app.name = "SP";
  app.workload = workload;
  app.timesteps = 400;
  app.serial_cycles_per_step = 3e6;

  // compute_rhs: poor load balancing AND poor cache behavior (§V.A).
  RegionSpec rhs;
  rhs.name = "compute_rhs";
  rhs.iterations = grid;
  rhs.cycles_per_iter = 1.1e8 * s;
  rhs.imbalance = blocks(0.75 * imb, 3, 1001);
  rhs.memory = mem(2.5e6 * s, 9.0e8 * s, 6, 1.0, 0.05, 0.030, 0.020);
  app.regions.push_back(rhs);

  // x/y/z_solve: good balance, poor cache (large per-plane footprints
  // thrash the shared L3 at high thread counts).
  RegionSpec xs;
  xs.name = "x_solve";
  xs.iterations = grid;
  xs.cycles_per_iter = 5.6e7 * s;
  xs.imbalance = blocks(0.50 * imb, 2, 1002);
  xs.memory = mem(3.0e6 * s, 8.0e8 * s, 2, 1.0, 0.05, 0.030, 0.025);
  app.regions.push_back(xs);

  RegionSpec ys = xs;
  ys.name = "y_solve";
  ys.imbalance = blocks(0.55 * imb, 2, 1003);
  ys.memory = mem(3.0e6 * s, 7.0e8 * s, 2, 1.0, 0.05, 0.030, 0.022);
  app.regions.push_back(ys);

  RegionSpec zs = xs;
  zs.name = "z_solve";
  // The z sweep strides across planes: worse line utilization.
  zs.imbalance = blocks(0.60 * imb, 2, 1004);
  zs.memory = mem(3.5e6 * s, 1.0e9 * s, 2, 2.0, 0.05, 0.045, 0.041, 16.0);
  app.regions.push_back(zs);

  // The remaining loop-based regions of SP's ADI sweep (small).
  for (const char* name : {"txinvr", "ninvr", "pinvr", "tzetar", "add"})
    app.regions.push_back(small_region(name, grid, s));

  // One-time regions (13 total, matching the paper's count).
  for (const char* name :
       {"initialize", "exact_rhs", "error_norm", "rhs_norm"})
    app.setup_regions.push_back(small_region(name, grid, s));

  // ADI timestep order: rhs, then the three sweeps with their inversions.
  app.step_sequence = {0, 4, 1, 5, 2, 6, 3, 7, 8};
  return app;
}

AppSpec bt_app(const std::string& workload) {
  ARCS_CHECK_MSG(workload == "B" || workload == "C",
                 "BT workloads are B and C");
  const std::int64_t grid = workload == "B" ? 102 : 162;
  const double s = std::pow(static_cast<double>(grid) / 102.0, 2.0);

  AppSpec app;
  app.name = "BT";
  app.workload = workload;
  app.timesteps = 400;
  app.serial_cycles_per_step = 3e6;

  // compute_rhs: the one hard region — rhsz's K+-2 stencil strides across
  // planes (stride factor 4), with block-wise imbalance (§V.B).
  RegionSpec rhs;
  rhs.name = "compute_rhs";
  rhs.iterations = grid;
  rhs.cycles_per_iter = 8.8e7 * s;
  rhs.imbalance = blocks(0.32, 3, 2001);
  rhs.memory = mem(2.0e6 * s, 1.6e8 * s, 2, 4.0, 0.05, 0.025, 0.020);
  app.regions.push_back(rhs);

  // x/y/z_solve: 5x5 block tridiagonal sweeps — compute-heavy, good
  // balance and cache behavior; only mild block variation remains.
  RegionSpec xs;
  xs.name = "x_solve";
  xs.iterations = grid * 5;  // fused loop nest: fine-grained, well balanced
  xs.cycles_per_iter = 2.24e7 * s;
  xs.imbalance = blocks(0.07, 8, 2002);
  xs.memory = mem(1.6e5 * s, 2.5e8 * s, 4, 1.0, 0.04, 0.015, 0.008);
  app.regions.push_back(xs);

  RegionSpec ys = xs;
  ys.name = "y_solve";
  ys.imbalance = blocks(0.07, 8, 2003);
  app.regions.push_back(ys);

  RegionSpec zs = xs;
  zs.name = "z_solve";
  zs.imbalance = blocks(0.07, 8, 2004);
  zs.memory = mem(1.6e5 * s, 2.7e8 * s, 4, 1.0, 0.04, 0.015, 0.009);
  app.regions.push_back(zs);

  app.regions.push_back(small_region("add", grid, s));

  for (const char* name :
       {"initialize", "exact_rhs", "error_norm", "rhs_norm"})
    app.setup_regions.push_back(small_region(name, grid, s));

  app.step_sequence = {0, 1, 2, 3, 4};
  return app;
}

AppSpec lulesh_app(const std::string& workload) {
  ARCS_CHECK_MSG(workload == "45" || workload == "60",
                 "LULESH workloads are mesh sizes 45 and 60");
  const std::int64_t edge = workload == "45" ? 45 : 60;
  const std::int64_t elems = edge * edge * edge;

  AppSpec app;
  app.name = "LULESH";
  app.workload = workload;
  app.timesteps = 60;
  app.serial_cycles_per_step = 4e6;

  auto region = [&](std::string name, double cycles, ImbalanceSpec imb,
                    sim::MemoryBehavior m) {
    RegionSpec r;
    r.name = std::move(name);
    r.iterations = elems;
    r.cycles_per_iter = cycles;
    r.imbalance = imb;
    r.memory = m;
    app.regions.push_back(r);
  };

  // Large, well-behaved element loops (fine-grained; 91k+ iterations).
  region("IntegrateStressForElems", 45000, blocks(0.25, 128, 3001),
         mem(600, 6000, 64, 1.0, 0.03, 0.012, 0.006));
  region("CalcFBHourglassForceForElems", 78000, blocks(0.65, 128, 3002),
         mem(700, 7500, 64, 1.0, 0.04, 0.015, 0.008));
  region("CalcKinematicsForElems", 72000, blocks(0.06, 128, 3003),
         mem(500, 5000, 64, 1.0, 0.03, 0.010, 0.005));
  region("CalcLagrangeElementsPart2", 21000, blocks(0.20, 128, 3004),
         mem(300, 3000, 64, 1.0, 0.03, 0.010, 0.005));
  region("CalcMonotonicQGradientsForElems", 57000, blocks(0.06, 128, 3005),
         mem(550, 5500, 64, 1.0, 0.03, 0.010, 0.005));
  region("CalcMonotonicQRegionForElems", 27000, blocks(0.45, 200, 3006),
         mem(400, 4000, 64, 1.0, 0.03, 0.010, 0.005));
  region("ApplyMaterialPropertiesForElems", 13500, blocks(0.20, 128, 3007),
         mem(200, 2000, 64, 1.0, 0.03, 0.010, 0.004));

  // The two tiny, barrier-dominated regions (paper §V.C): most work sits
  // in a small material subset, so the default static split leaves most
  // threads waiting. Per-call times ~8.3 ms and ~13.9 ms at default.
  region("EvalEOSForElems", 700, step_imbalance(9.0, 0.08),
         mem(250, 2200, 64, 1.0, 0.03, 0.010, 0.004));
  region("CalcPressureForElems", 1150, step_imbalance(9.0, 0.08),
         mem(250, 2200, 64, 1.0, 0.03, 0.010, 0.004));

  region("CalcSoundSpeedForElems", 400, {}, mem(150, 1500, 64, 1.0, 0.03,
                                                0.010, 0.004));
  region("UpdateVolumesForElems", 800, {}, mem(100, 1000, 64, 1.0, 0.02,
                                               0.008, 0.003));

  // One timestep: Lagrange nodal + element phases, then the EOS sweep
  // over 8 material regions (EvalEOS re-entered around each CalcPressure
  // call — the interleaving that forces a reconfiguration per call).
  app.step_sequence = {0, 1, 2, 3, 4, 5, 6};
  for (int material = 0; material < 8; ++material) {
    app.step_sequence.push_back(7);  // EvalEOSForElems
    app.step_sequence.push_back(8);  // CalcPressureForElems
    app.step_sequence.push_back(7);  // EvalEOSForElems (phase 2)
  }
  app.step_sequence.push_back(9);
  app.step_sequence.push_back(10);
  return app;
}

AppSpec cg_app(const std::string& workload) {
  ARCS_CHECK_MSG(workload == "B" || workload == "C",
                 "CG workloads are B and C");
  // Class B: na = 75000 rows, ~13 nonzeros/row; class C: na = 150000.
  const std::int64_t rows = workload == "B" ? 75000 : 150000;

  AppSpec app;
  app.name = "CG";
  app.workload = workload;
  app.timesteps = 300;  // CG inner iterations across the outer loop
  app.serial_cycles_per_step = 1e6;

  // q = A*p: irregular row lengths (power-law-ish) make the default
  // static split imbalanced; the gathers are cache-hostile.
  RegionSpec spmv;
  spmv.name = "conj_grad_spmv";
  spmv.iterations = rows;
  spmv.cycles_per_iter = 54000;
  spmv.imbalance = blocks(0.45, 500, 4001);
  spmv.memory = mem(150, 1400, 4, 1.0, 0.05, 0.02, 0.012, 6.0);
  app.regions.push_back(spmv);

  // Dot products carry reductions; streaming, perfectly balanced.
  RegionSpec dot;
  dot.name = "conj_grad_dot";
  dot.iterations = rows;
  dot.cycles_per_iter = 2200;
  dot.has_reduction = true;
  dot.memory = mem(16, 160, 8, 1.0, 0.03, 0.012, 0.008, 10.0);
  app.regions.push_back(dot);

  // axpy updates: pure streaming, bandwidth-bound.
  RegionSpec axpy;
  axpy.name = "conj_grad_axpy";
  axpy.iterations = rows;
  axpy.cycles_per_iter = 2600;
  axpy.memory = mem(24, 240, 8, 1.0, 0.04, 0.02, 0.014, 10.0);
  app.regions.push_back(axpy);

  RegionSpec norm = dot;
  norm.name = "norm_temp";
  norm.cycles_per_iter = 2000;
  app.regions.push_back(norm);

  // Matrix construction runs once.
  RegionSpec makea = small_region("makea", rows / 100, 1.0);
  app.setup_regions.push_back(makea);

  // One CG inner iteration: q = A p; alpha = rho / (p,q); x,r updates;
  // rho = (r,r).
  app.step_sequence = {0, 1, 2, 2, 1, 3};
  return app;
}

AppSpec synthetic_app(int timesteps) {
  AppSpec app;
  app.name = "synthetic";
  app.workload = "unit";
  app.timesteps = timesteps;

  RegionSpec imbalanced;
  imbalanced.name = "imbalanced_loop";
  imbalanced.iterations = 256;
  imbalanced.cycles_per_iter = 4e5;
  imbalanced.imbalance = {ImbalanceKind::Ramp, 0.8, 0.25, 64, 7};
  imbalanced.memory = mem(1e4, 1e5, 4, 1.0, 0.04, 0.012, 0.005);
  app.regions.push_back(imbalanced);

  RegionSpec uniform;
  uniform.name = "uniform_loop";
  uniform.iterations = 256;
  uniform.cycles_per_iter = 2e5;
  uniform.memory = mem(5e3, 5e4, 4, 1.0, 0.03, 0.010, 0.004);
  app.regions.push_back(uniform);

  app.step_sequence = {0, 1};
  return app;
}

}  // namespace arcs::kernels
