// Experiment driver: runs an application on a machine under one of the
// paper's strategies and reports what the paper's figures need.
//
// Protocols (faithful to §III/§IV):
//  * default       — plain run, no APEX attached, runtime defaults;
//  * ARCS-Online   — one run; Nelder-Mead searches and deploys within it
//                    (search overhead is part of the measurement);
//  * ARCS-Offline  — an exhaustive search execution first (unmeasured,
//                    re-running the app until every region's session
//                    converges), history saved; then a fresh measured run
//                    that replays the history ("Only the second execution
//                    with the optimal configuration is measured").
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/arcs.hpp"
#include "kernels/apps.hpp"
#include "sim/presets.hpp"

namespace arcs::kernels {

/// Thrown by run_app when its RunOptions::stop token is raised: the
/// cooperative cancellation path the experiment pool (src/exec) uses for
/// per-job timeouts and campaign cancellation. The partially-computed
/// result is discarded; the machine/runtime of the aborted run were
/// job-local, so nothing leaks into other experiments.
class Aborted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct RegionRunStats {
  std::string name;
  std::size_t calls = 0;
  double time_total = 0;      ///< region wall time (excl. config change)
  double loop_total = 0;      ///< sum of busiest-thread loop times
  double loop_sum_total = 0;  ///< sum over threads & calls (OMPT LOOP)
  double barrier_total = 0;   ///< sum over threads & calls of barrier waits
  double dispatch_total = 0;
  double config_change_total = 0;
  double instrumentation_total = 0;
  double energy_total = 0;
  /// Time-weighted mean conditional miss ratios.
  double miss_l1 = 0, miss_l2 = 0, miss_l3 = 0;
  somp::LoopConfig last_config;
  int last_team = 0;

  double per_call_mean() const {
    return calls ? time_total / static_cast<double>(calls) : 0.0;
  }
};

struct RunResult {
  std::string strategy;
  double elapsed = 0;  ///< virtual seconds of the measured execution
  double energy = 0;   ///< package joules of the measured execution
  double dram_energy = 0;  ///< DRAM joules (memory-power extension)
  std::map<std::string, RegionRunStats> regions;
  std::size_t search_evaluations = 0;
  std::size_t search_passes = 0;  ///< app executions spent searching
  std::size_t blacklisted = 0;
  /// Regions whose search started from a model prediction (Predicted).
  std::size_t model_seeded = 0;
  HistoryStore history;  ///< per-region bests (offline strategies)
};

/// How repeated measured runs are aggregated (paper §IV.D: "We ran each
/// experiments three times. We report the average of these runs for
/// Crill as it was a dedicated resource. However, we report minimum of
/// these three runs for Minotaur as it was a shared resource.").
enum class RepetitionStat {
  Auto,  ///< min on machines with high OS jitter (>2%), mean otherwise
  Mean,
  Min,
};

struct RunOptions {
  TuningStrategy strategy = TuningStrategy::Default;
  /// Package power cap in watts; 0 = uncapped (TDP).
  double power_cap = 0.0;
  Objective objective = Objective::Time;
  bool selective_tuning = false;
  /// Add the DVFS dimension to the search (paper §VII extension).
  bool tune_frequency = false;
  /// Add the OMP_PROC_BIND {spread, close} dimension (extension).
  bool tune_placement = false;
  harmony::StrategyKind online_method = harmony::StrategyKind::NelderMead;
  /// Build the Table-I space conditional (chunk active only under
  /// dynamic/guided — see core/search_space.hpp): exhaustive sweeps
  /// skip inactive-coordinate duplicates.
  bool conditional_space = false;
  /// Options for the surrogate / portfolio methods.
  search::SurrogateOptions surrogate;
  search::PortfolioOptions portfolio;
  std::size_t max_search_passes = 60;
  std::uint64_t seed = 1;
  /// Override the app's timestep count (0 = use the spec's).
  int timesteps_override = 0;
  /// Reuse a previous search's history instead of searching again
  /// (OfflineReplay path). The store must outlive the call.
  const HistoryStore* reuse_history = nullptr;
  /// Predicted strategy: the trained model consulted per region (must
  /// outlive the call).
  const ConfigPredictor* predictor = nullptr;
  /// Remote strategy: shared tuning-service client (must outlive the
  /// call). The measured run queries it per region; the service owns the
  /// search sessions and the cross-run decision cache.
  RemoteTuner* remote = nullptr;
  /// Remote strategy: per-decision blocking budget (see ArcsOptions).
  double remote_timeout_ms = 0.0;
  /// Dynamic power budget (paper §II): reprogram the package cap at the
  /// start of the given timesteps of the *measured* run. Entries are
  /// (step index, cap watts); 0 W = TDP. Steps must be ascending.
  std::vector<std::pair<int, double>> cap_schedule;
  /// Measured-run repetitions and their aggregation (paper protocol: 3
  /// runs, mean on Crill, min on Minotaur). Region stats come from the
  /// aggregate-defining repetition.
  int repetitions = 1;
  RepetitionStat repetition_stat = RepetitionStat::Auto;
  /// Cooperative stop token. When non-null and set, run_app throws
  /// kernels::Aborted at the next checkpoint (one virtual timestep, or
  /// one offline-search pass). The pointee must outlive the call; it is
  /// how the experiment pool enforces wall-clock timeouts and
  /// cancellation without being able to kill a worker thread.
  const std::atomic<bool>* stop = nullptr;
  /// Called after each somp::Runtime this run constructs (the offline
  /// search runtime and every measured repetition's). Tooling uses it to
  /// attach Observer-kind OMPT tools — e.g. telemetry::attach_tracing —
  /// without run_app knowing about them. Must not perturb the run:
  /// Observer tools charge no instrumentation time, so results stay
  /// bit-identical with and without a hook (telemetry_test asserts this).
  std::function<void(somp::Runtime&)> runtime_hook;
};

/// Runs the full protocol for one (app, machine, options) combination.
RunResult run_app(const AppSpec& app, const sim::MachineSpec& machine,
                  const RunOptions& options);

/// --- region-level tooling for the motivation/feature figures ---

struct ConfigOutcome {
  somp::LoopConfig config;
  somp::ExecutionRecord record;
};

/// Executes one region once under an explicit configuration at a cap.
ConfigOutcome run_region_once(const AppSpec& app,
                              const std::string& region_name,
                              const sim::MachineSpec& machine,
                              double power_cap,
                              const somp::LoopConfig& config);

/// Sweeps the full ARCS search space for one region at a cap; returns all
/// outcomes (ordered as the space enumerates). With `conditional` the
/// space is built conditional and only canonical configurations run —
/// one outcome per distinct configuration instead of per grid cell.
std::vector<ConfigOutcome> sweep_region(const AppSpec& app,
                                        const std::string& region_name,
                                        const sim::MachineSpec& machine,
                                        double power_cap,
                                        bool conditional = false);

/// The outcome with the smallest region duration.
const ConfigOutcome& best_outcome(const std::vector<ConfigOutcome>& sweep);

}  // namespace arcs::kernels
