#include "kernels/imbalance.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace arcs::kernels {

namespace {

void normalize(std::vector<double>& costs, double target_total) {
  double total = 0.0;
  for (double c : costs) total += c;
  if (total <= 0.0) return;
  const double scale = target_total / total;
  for (double& c : costs) c *= scale;
}

}  // namespace

std::vector<double> make_cost_vector(std::int64_t iterations,
                                     double base_cycles,
                                     const ImbalanceSpec& spec) {
  ARCS_CHECK(iterations >= 0);
  ARCS_CHECK(base_cycles >= 0);
  const auto n = static_cast<std::size_t>(iterations);
  std::vector<double> costs(n, base_cycles);
  if (n == 0) return costs;

  switch (spec.kind) {
    case ImbalanceKind::None:
      return costs;

    case ImbalanceKind::Ramp: {
      // cost(i) = base * (1 + 2*m * i/(n-1) - m): spans (1-m .. 1+m).
      const double m = spec.magnitude;
      const double denom =
          n > 1 ? static_cast<double>(n - 1) : 1.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(i) / denom;
        costs[i] = base_cycles * (1.0 - m + 2.0 * m * x);
      }
      break;
    }

    case ImbalanceKind::Step: {
      const auto heavy =
          static_cast<std::size_t>(spec.fraction * static_cast<double>(n));
      for (std::size_t i = 0; i < heavy; ++i)
        costs[i] = base_cycles * (1.0 + spec.magnitude);
      break;
    }

    case ImbalanceKind::RandomBlocks: {
      common::Rng rng(spec.seed);
      const auto block = static_cast<std::size_t>(
          std::max<std::int64_t>(1, spec.block));
      const double sigma = spec.magnitude;
      const double mu = -0.5 * sigma * sigma;  // unit-mean lognormal
      for (std::size_t b = 0; b < n; b += block) {
        const double factor = rng.lognormal(mu, sigma);
        const std::size_t end = std::min(n, b + block);
        for (std::size_t i = b; i < end; ++i) costs[i] = base_cycles * factor;
      }
      break;
    }

    case ImbalanceKind::GaussianBump: {
      const double center = 0.5 * static_cast<double>(n - 1);
      const double width =
          std::max(1.0, spec.fraction * static_cast<double>(n));
      for (std::size_t i = 0; i < n; ++i) {
        const double d = (static_cast<double>(i) - center) / width;
        costs[i] =
            base_cycles * (1.0 + spec.magnitude * std::exp(-0.5 * d * d));
      }
      break;
    }
  }

  normalize(costs, base_cycles * static_cast<double>(n));
  return costs;
}

}  // namespace arcs::kernels
