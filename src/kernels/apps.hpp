// Workload models of the paper's three proxy applications (§IV.C).
//
// Each AppSpec lists the application's OpenMP parallel regions with
// iteration counts, per-iteration compute cost, imbalance shape and memory
// behavior chosen to match the paper's characterization:
//
//  * SP  — well balanced overall but poor cache behavior; 13 regions, ~75%
//          of time in compute_rhs / x_solve / y_solve / z_solve;
//          compute_rhs also imbalanced. Workloads: class B (102^3 grid)
//          and class C (162^3).
//  * BT  — good balance and cache behavior except compute_rhs (the rhsz
//          K+-2 stencil's long-stride accesses). Workloads B and C.
//  * LULESH — well balanced, good cache; two *tiny* barrier-dominated
//          regions (EvalEOSForElems ~8.3 ms/call, CalcPressureForElems
//          ~13.9 ms/call) interleaved many times per step, which is what
//          makes per-call tuning overhead bite (paper §V.C). Workloads:
//          mesh 45 and mesh 60.
//
// The absolute cycle counts are model scale, not measured constants; the
// relative structure (which regions are imbalanced / memory-bound / tiny)
// is what carries the paper's behavior. See DESIGN.md §6.
#pragma once

#include <string>
#include <vector>

#include "kernels/regions.hpp"

namespace arcs::kernels {

struct AppSpec {
  std::string name;
  std::string workload;
  int timesteps = 100;
  /// Regions executed once before the timestep loop (init/verification).
  std::vector<RegionSpec> setup_regions;
  /// Regions of the timestep loop.
  std::vector<RegionSpec> regions;
  /// Execution order within one timestep: indices into `regions`
  /// (a region may appear several times — LULESH's EvalEOS/CalcPressure
  /// interleaving).
  std::vector<std::size_t> step_sequence;
  /// Master-only work between regions, per step.
  double serial_cycles_per_step = 0.0;

  /// Looks up a region spec by name (throws if absent).
  const RegionSpec& region(const std::string& region_name) const;
};

/// NPB SP, workload "B" or "C".
AppSpec sp_app(const std::string& workload = "B");

/// NPB BT, workload "B" or "C".
AppSpec bt_app(const std::string& workload = "B");

/// LULESH 2.0, workload "45" or "60" (mesh edge size).
AppSpec lulesh_app(const std::string& workload = "45");

/// NPB CG ("B" or "C") — beyond the paper's three apps, to exercise
/// generalization: an irregular, bandwidth-bound SpMV with row-length
/// imbalance plus reduction-carrying dot products.
AppSpec cg_app(const std::string& workload = "B");

/// A tiny synthetic app for unit tests: one imbalanced and one uniform
/// region, `timesteps` steps.
AppSpec synthetic_app(int timesteps = 20);

}  // namespace arcs::kernels
