#include "kernels/model_bridge.hpp"

#include "common/check.hpp"
#include "common/strings.hpp"

namespace arcs::kernels {

model::RegionDescriptor describe_region(const RegionSpec& spec) {
  model::RegionDescriptor d;
  d.iterations = static_cast<double>(spec.iterations);
  d.cycles_per_iter = spec.cycles_per_iter;
  d.bytes_per_iter = spec.memory.bytes_per_iter;
  d.access_bytes_per_iter = spec.memory.access_bytes_per_iter;
  d.reuse_window = spec.memory.reuse_window;
  d.stride_factor = spec.memory.stride_factor;
  d.base_miss_l1 = spec.memory.base_miss_l1;
  d.base_miss_l2 = spec.memory.base_miss_l2;
  d.base_miss_l3 = spec.memory.base_miss_l3;
  d.mlp = spec.memory.mlp;
  d.imbalance = spec.imbalance.kind == ImbalanceKind::None
                    ? 0.0
                    : spec.imbalance.magnitude;
  d.has_reduction = spec.has_reduction;
  return d;
}

namespace {

std::optional<AppSpec> app_by_name(const std::string& app,
                                   const std::string& workload) {
  const std::string lower = common::to_lower(app);
  if (lower == "sp") return sp_app(workload);
  if (lower == "bt") return bt_app(workload);
  if (lower == "lulesh") return lulesh_app(workload);
  if (lower == "cg") return cg_app(workload);
  if (lower == "synthetic") return synthetic_app();
  return std::nullopt;
}

}  // namespace

model::DescriptorResolver model_resolver() {
  return [](const HistoryKey& key) -> std::optional<model::ResolvedRegion> {
    const auto machine = model::preset_machine(key.machine);
    if (!machine) return std::nullopt;
    try {
      const auto app = app_by_name(key.app, key.workload);
      if (!app) return std::nullopt;
      // region() throws on an unknown region name; workloads the app
      // rejects throw above. Either way: the model has nothing to say.
      return model::ResolvedRegion{describe_region(app->region(key.region)),
                                   *machine};
    } catch (const common::ContractError&) {
      return std::nullopt;
    }
  };
}

model::Example example_from_outcome(const AppSpec& app,
                                    const RegionSpec& spec,
                                    const sim::MachineSpec& machine,
                                    double power_cap,
                                    const ConfigOutcome& outcome) {
  model::Example e;
  e.key.app = app.name;
  e.key.machine = machine.name;
  e.key.power_cap = power_cap;
  e.key.workload = app.workload;
  e.key.region = spec.name;
  e.features =
      model::extract_features(describe_region(spec), machine, power_cap);
  e.hw_threads = machine.topology.hw_threads();
  e.iterations = static_cast<double>(spec.iterations);
  e.config = outcome.config;
  e.value = outcome.record.duration;
  e.energy = outcome.record.energy;
  return e;
}

}  // namespace arcs::kernels
