#include "kernels/regions.hpp"

namespace arcs::kernels {

somp::RegionWork RegionSpec::build(std::uint64_t codeptr) const {
  somp::RegionWork work;
  work.id.name = name;
  work.id.codeptr = codeptr;
  work.cost = std::make_shared<somp::CostProfile>(
      make_cost_vector(iterations, cycles_per_iter, imbalance));
  work.memory = memory;
  work.has_reduction = has_reduction;
  return work;
}

RegionSpec simple_region(std::string name, std::int64_t iterations,
                         double cycles_per_iter) {
  RegionSpec spec;
  spec.name = std::move(name);
  spec.iterations = iterations;
  spec.cycles_per_iter = cycles_per_iter;
  spec.memory.bytes_per_iter = 128.0;
  spec.memory.base_miss_l1 = 0.02;
  spec.memory.base_miss_l2 = 0.02;
  spec.memory.base_miss_l3 = 0.008;
  return spec;
}

}  // namespace arcs::kernels
