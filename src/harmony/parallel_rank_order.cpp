#include "harmony/parallel_rank_order.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace arcs::harmony {

ParallelRankOrder::ParallelRankOrder(ParallelRankOrderOptions options,
                                     std::uint64_t seed)
    : opts_(options), rng_(seed) {
  ARCS_CHECK(opts_.max_evals >= 2);
}

void ParallelRankOrder::ensure_initialized(const SearchSpace& space) {
  if (initialized_) return;
  initialized_ = true;
  const std::size_t d = space.num_dimensions();
  const std::size_t n =
      opts_.simplex_size ? opts_.simplex_size : std::max<std::size_t>(2 * d, d + 1);

  // Initial simplex: Latin hypercube — each dimension gets its own random
  // permutation of the n cells, so the vertices span the box instead of
  // collapsing onto a diagonal (which would degenerate the reflections).
  std::vector<std::vector<std::size_t>> perms(d);
  for (std::size_t k = 0; k < d; ++k) {
    perms[k].resize(n);
    for (std::size_t i = 0; i < n; ++i) perms[k][i] = i;
    for (std::size_t i = n; i-- > 1;)
      std::swap(perms[k][i], perms[k][rng_.uniform_index(i + 1)]);
  }
  queue_.clear();
  queue_slots_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> v(d);
    for (std::size_t k = 0; k < d; ++k) {
      const double hi = static_cast<double>(space.dimension(k).values.size() - 1);
      const double cell = hi / static_cast<double>(n);
      v[k] = std::min(
          hi, cell * (static_cast<double>(perms[k][i]) + rng_.uniform()));
    }
    queue_.push_back(std::move(v));
    queue_slots_.push_back(i);
  }
  simplex_.resize(n);
  queue_values_.assign(queue_.size(), 0.0);
  queue_next_ = 0;
  phase_ = Phase::Build;
}

Point ParallelRankOrder::next(const SearchSpace& space) {
  ensure_initialized(space);
  if (converged_) return best(space);
  ARCS_CHECK(queue_next_ < queue_.size());
  return space.round(queue_[queue_next_]);
}

void ParallelRankOrder::report(const SearchSpace& space,
                               const Point& /*point*/, double value) {
  ensure_initialized(space);
  if (converged_) return;
  ++evals_;
  if (value < best_seen_f_) {
    best_seen_f_ = value;
    best_seen_ = queue_[queue_next_];
  }
  queue_values_[queue_next_] = value;
  ++queue_next_;

  if (queue_next_ < queue_.size()) {
    if (evals_ >= opts_.max_evals) converged_ = true;
    return;
  }

  // Round complete: integrate results.
  switch (phase_) {
    case Phase::Build: {
      for (std::size_t i = 0; i < queue_.size(); ++i)
        simplex_[queue_slots_[i]] = {queue_[i], queue_values_[i]};
      start_round(space);
      break;
    }
    case Phase::Reflect: {
      const std::size_t b = best_index();
      const double incumbent = simplex_[b].f;
      const double round_best =
          *std::min_element(queue_values_.begin(), queue_values_.end());
      if (round_best < incumbent) {
        // Accept the reflected simplex (keep best vertex).
        for (std::size_t i = 0; i < queue_.size(); ++i)
          simplex_[queue_slots_[i]] = {queue_[i], queue_values_[i]};
        start_round(space);
      } else {
        // Contract every non-best vertex toward the best and re-measure.
        queue_.clear();
        queue_slots_.clear();
        for (std::size_t i = 0; i < simplex_.size(); ++i) {
          if (i == b) continue;
          std::vector<double> v(simplex_[i].x.size());
          for (std::size_t k = 0; k < v.size(); ++k)
            v[k] = simplex_[b].x[k] +
                   opts_.contraction * (simplex_[i].x[k] - simplex_[b].x[k]);
          queue_.push_back(std::move(v));
          queue_slots_.push_back(i);
        }
        queue_values_.assign(queue_.size(), 0.0);
        queue_next_ = 0;
        phase_ = Phase::Contract;
      }
      break;
    }
    case Phase::Contract: {
      for (std::size_t i = 0; i < queue_.size(); ++i)
        simplex_[queue_slots_[i]] = {queue_[i], queue_values_[i]};
      start_round(space);
      break;
    }
  }

  if (evals_ >= opts_.max_evals) converged_ = true;
}

void ParallelRankOrder::start_round(const SearchSpace& space) {
  if (simplex_coord_spread() <= opts_.coord_tol) {
    converged_ = true;
    return;
  }
  // Reflect all non-best vertices through the best one.
  const std::size_t b = best_index();
  queue_.clear();
  queue_slots_.clear();
  for (std::size_t i = 0; i < simplex_.size(); ++i) {
    if (i == b) continue;
    std::vector<double> v(simplex_[i].x.size());
    for (std::size_t k = 0; k < v.size(); ++k) {
      const double hi = static_cast<double>(space.dimension(k).values.size() - 1);
      v[k] = std::clamp(2.0 * simplex_[b].x[k] - simplex_[i].x[k], 0.0, hi);
    }
    queue_.push_back(std::move(v));
    queue_slots_.push_back(i);
  }
  queue_values_.assign(queue_.size(), 0.0);
  queue_next_ = 0;
  phase_ = Phase::Reflect;
}

double ParallelRankOrder::simplex_coord_spread() const {
  double spread = 0.0;
  const std::size_t d = simplex_.front().x.size();
  for (std::size_t k = 0; k < d; ++k) {
    double lo = simplex_.front().x[k];
    double hi = lo;
    for (const auto& v : simplex_) {
      lo = std::min(lo, v.x[k]);
      hi = std::max(hi, v.x[k]);
    }
    spread = std::max(spread, hi - lo);
  }
  return spread;
}

std::size_t ParallelRankOrder::best_index() const {
  std::size_t b = 0;
  for (std::size_t i = 1; i < simplex_.size(); ++i)
    if (simplex_[i].f < simplex_[b].f) b = i;
  return b;
}

bool ParallelRankOrder::converged(const SearchSpace& /*space*/) const {
  return converged_;
}

Point ParallelRankOrder::best(const SearchSpace& space) const {
  ARCS_CHECK_MSG(!best_seen_.empty(), "PRO has no measurements yet");
  return space.round(best_seen_);
}

}  // namespace arcs::harmony
