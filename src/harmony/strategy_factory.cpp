#include "harmony/strategy_factory.hpp"

#include "common/check.hpp"
#include "harmony/exhaustive.hpp"
#include "harmony/random_search.hpp"

namespace arcs::harmony {

std::string_view to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::Exhaustive:
      return "exhaustive";
    case StrategyKind::NelderMead:
      return "nelder-mead";
    case StrategyKind::ParallelRankOrder:
      return "pro";
    case StrategyKind::Random:
      return "random";
    case StrategyKind::SimulatedAnnealing:
      return "annealing";
    case StrategyKind::ModelSeeded:
      return "model-seeded";
    case StrategyKind::Surrogate:
      return "surrogate";
    case StrategyKind::Portfolio:
      return "portfolio";
  }
  return "unknown";
}

std::unique_ptr<Strategy> make_strategy(StrategyKind kind,
                                        const StrategyOptions& options) {
  switch (kind) {
    case StrategyKind::Exhaustive:
      return std::make_unique<ExhaustiveSearch>();
    case StrategyKind::NelderMead:
      return std::make_unique<NelderMead>(options.nelder_mead, options.seed);
    case StrategyKind::ParallelRankOrder:
      return std::make_unique<ParallelRankOrder>(options.pro, options.seed);
    case StrategyKind::Random:
      return std::make_unique<RandomSearch>(options.random_budget,
                                            options.seed);
    case StrategyKind::SimulatedAnnealing:
      return std::make_unique<SimulatedAnnealing>(options.annealing,
                                                  options.seed);
    case StrategyKind::ModelSeeded: {
      ARCS_CHECK_MSG(!options.model_seeded.center_frac.empty(),
                     "ModelSeeded needs a predicted center "
                     "(model_seeded.center_frac)");
      // Nelder–Mead, but the simplex starts exactly at the prediction:
      // no center jitter (the first proposal IS the predicted config)
      // and a tight refinement step.
      NelderMeadOptions opts = options.nelder_mead;
      opts.initial_center_frac = options.model_seeded.center_frac;
      opts.initial_step = options.model_seeded.initial_step;
      opts.center_jitter = 0.0;
      return std::make_unique<NelderMead>(opts, options.seed);
    }
    case StrategyKind::Surrogate:
    case StrategyKind::Portfolio:
      // These live a layer up (they carry their own options and, for the
      // portfolio, construct other strategies as arms).
      ARCS_CHECK_MSG(false,
                     "Surrogate/Portfolio strategies are built by "
                     "search::make_strategy (src/search/)");
      return nullptr;
  }
  ARCS_CHECK_MSG(false, "unknown strategy kind");
  return nullptr;
}

}  // namespace arcs::harmony
