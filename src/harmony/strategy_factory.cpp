#include "harmony/strategy_factory.hpp"

#include "common/check.hpp"
#include "harmony/exhaustive.hpp"
#include "harmony/random_search.hpp"

namespace arcs::harmony {

std::string_view to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::Exhaustive:
      return "exhaustive";
    case StrategyKind::NelderMead:
      return "nelder-mead";
    case StrategyKind::ParallelRankOrder:
      return "pro";
    case StrategyKind::Random:
      return "random";
    case StrategyKind::SimulatedAnnealing:
      return "annealing";
  }
  return "unknown";
}

std::unique_ptr<Strategy> make_strategy(StrategyKind kind,
                                        const StrategyOptions& options) {
  switch (kind) {
    case StrategyKind::Exhaustive:
      return std::make_unique<ExhaustiveSearch>();
    case StrategyKind::NelderMead:
      return std::make_unique<NelderMead>(options.nelder_mead, options.seed);
    case StrategyKind::ParallelRankOrder:
      return std::make_unique<ParallelRankOrder>(options.pro, options.seed);
    case StrategyKind::Random:
      return std::make_unique<RandomSearch>(options.random_budget,
                                            options.seed);
    case StrategyKind::SimulatedAnnealing:
      return std::make_unique<SimulatedAnnealing>(options.annealing,
                                                  options.seed);
  }
  ARCS_CHECK_MSG(false, "unknown strategy kind");
  return nullptr;
}

}  // namespace arcs::harmony
