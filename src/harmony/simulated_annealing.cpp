#include "harmony/simulated_annealing.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace arcs::harmony {

SimulatedAnnealing::SimulatedAnnealing(SimulatedAnnealingOptions options,
                                       std::uint64_t seed)
    : opts_(options), rng_(seed) {
  ARCS_CHECK(opts_.max_evals >= 2);
  ARCS_CHECK(opts_.cooling > 0 && opts_.cooling < 1);
}

Point SimulatedAnnealing::propose_neighbor(const SearchSpace& space) const {
  ARCS_CHECK(current_.has_value());
  Point p = *current_;
  // Step magnitude cools with the temperature schedule.
  const double progress =
      static_cast<double>(evals_) / static_cast<double>(opts_.max_evals);
  const double step_frac =
      std::max(0.05, opts_.initial_step * (1.0 - progress));
  // Perturb one or two dimensions.
  const std::size_t dims_to_move = 1 + rng_.uniform_index(2);
  for (std::size_t k = 0; k < dims_to_move; ++k) {
    const std::size_t d = rng_.uniform_index(space.num_dimensions());
    const auto size = space.dimension(d).values.size();
    const auto span = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(step_frac * static_cast<double>(size)));
    const std::int64_t delta = rng_.uniform_int(-span, span);
    const std::int64_t moved =
        std::clamp<std::int64_t>(static_cast<std::int64_t>(p[d]) + delta, 0,
                                 static_cast<std::int64_t>(size) - 1);
    p[d] = static_cast<std::size_t>(moved);
  }
  return p;
}

Point SimulatedAnnealing::next(const SearchSpace& space) {
  if (converged(space)) return best(space);
  if (!current_) {
    // Start at the middle of the box.
    Point start(space.num_dimensions());
    for (std::size_t d = 0; d < start.size(); ++d)
      start[d] = space.dimension(d).values.size() / 2;
    candidate_ = start;
    return start;
  }
  candidate_ = propose_neighbor(space);
  return *candidate_;
}

void SimulatedAnnealing::report(const SearchSpace& space,
                                const Point& /*point*/, double value) {
  if (converged(space)) return;
  ARCS_CHECK_MSG(candidate_.has_value(), "report without a proposal");
  ++evals_;
  if (value < best_value_) {
    best_value_ = value;
    best_ = candidate_;
  }
  if (!current_) {
    current_ = candidate_;
    current_value_ = value;
    temperature_ = std::max(opts_.initial_temp_frac * value, 1e-12);
  } else {
    const double delta = value - current_value_;
    if (delta <= 0 ||
        rng_.uniform() < std::exp(-delta / std::max(temperature_, 1e-12))) {
      current_ = candidate_;
      current_value_ = value;
    }
    temperature_ *= opts_.cooling;
  }
  candidate_.reset();
}

bool SimulatedAnnealing::converged(const SearchSpace& /*space*/) const {
  return evals_ >= opts_.max_evals;
}

Point SimulatedAnnealing::best(const SearchSpace& /*space*/) const {
  ARCS_CHECK_MSG(best_.has_value(), "annealing has no measurements yet");
  return *best_;
}

}  // namespace arcs::harmony
