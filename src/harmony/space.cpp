#include "harmony/space.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace arcs::harmony {

std::string_view to_string(DimensionKind kind) {
  switch (kind) {
    case DimensionKind::Ordinal:
      return "ordinal";
    case DimensionKind::Categorical:
      return "categorical";
    case DimensionKind::Boolean:
      return "boolean";
  }
  return "unknown";
}

SearchSpace::SearchSpace(std::vector<Dimension> dimensions)
    : dims_(std::move(dimensions)) {
  ARCS_CHECK_MSG(!dims_.empty(), "search space needs >= 1 dimension");
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const Dimension& dim = dims_[d];
    ARCS_CHECK_MSG(!dim.values.empty(),
                   "dimension '" + dim.name + "' has no values");
    ARCS_CHECK_MSG(dim.canonical < dim.values.size(),
                   "dimension '" + dim.name +
                       "': canonical index out of range");
    if (dim.kind == DimensionKind::Boolean)
      ARCS_CHECK_MSG(dim.values.size() == 2,
                     "boolean dimension '" + dim.name +
                         "' needs exactly 2 values");
    if (dim.activation) {
      conditional_ = true;
      // Parents must come first so canonicalization resolves in one
      // left-to-right pass (a condition chain canonicalizes root-first).
      ARCS_CHECK_MSG(dim.activation->parent < d,
                     "dimension '" + dim.name +
                         "': activation parent must be an earlier "
                         "dimension");
      ARCS_CHECK_MSG(!dim.activation->allowed.empty(),
                     "dimension '" + dim.name +
                         "': activation needs >= 1 allowed parent value");
      const std::size_t parent_size =
          dims_[dim.activation->parent].values.size();
      for (const std::size_t a : dim.activation->allowed)
        ARCS_CHECK_MSG(a < parent_size,
                       "dimension '" + dim.name +
                           "': activation value index out of range");
    }
  }
}

const Dimension& SearchSpace::dimension(std::size_t d) const {
  ARCS_CHECK(d < dims_.size());
  return dims_[d];
}

std::uint64_t SearchSpace::size() const {
  std::uint64_t n = 1;
  for (const auto& d : dims_) n *= d.values.size();
  return n;
}

bool SearchSpace::active(const Point& p, std::size_t d) const {
  ARCS_CHECK(d < dims_.size() && p.size() == dims_.size());
  const Dimension& dim = dims_[d];
  if (!dim.activation) return true;
  // An inactive parent holds its canonical index after canonicalization;
  // the predicate is evaluated against that collapsed coordinate, so a
  // chain of conditions resolves root-first.
  const std::size_t parent_index =
      active(p, dim.activation->parent)
          ? p[dim.activation->parent]
          : dims_[dim.activation->parent].canonical;
  return std::find(dim.activation->allowed.begin(),
                   dim.activation->allowed.end(),
                   parent_index) != dim.activation->allowed.end();
}

Point SearchSpace::canonicalize(Point p) const {
  ARCS_CHECK(valid(p));
  if (!conditional_) return p;
  for (std::size_t d = 0; d < dims_.size(); ++d)
    if (!active(p, d)) p[d] = dims_[d].canonical;
  return p;
}

bool SearchSpace::is_canonical(const Point& p) const {
  if (!valid(p)) return false;
  if (!conditional_) return true;
  for (std::size_t d = 0; d < dims_.size(); ++d)
    if (!active(p, d) && p[d] != dims_[d].canonical) return false;
  return true;
}

std::uint64_t SearchSpace::num_canonical_points() const {
  if (!conditional_) return size();
  // Walk the dimensions left to right, branching only on active extents:
  // the count is the sum over parent assignments of the product of
  // active sizes. Spaces are enumerable by design (Table I is ~10^2), so
  // the walk is cheap.
  std::uint64_t count = 0;
  Point p = canonical_origin();
  do {
    ++count;
  } while (advance_canonical(p));
  return count;
}

std::vector<Value> SearchSpace::decode(const Point& p) const {
  const Point c = canonicalize(p);
  std::vector<Value> out(c.size());
  for (std::size_t d = 0; d < c.size(); ++d)
    out[d] = dims_[d].values[c[d]];
  return out;
}

bool SearchSpace::valid(const Point& p) const {
  if (p.size() != dims_.size()) return false;
  for (std::size_t d = 0; d < p.size(); ++d)
    if (p[d] >= dims_[d].values.size()) return false;
  return true;
}

Point SearchSpace::round(const std::vector<double>& x) const {
  ARCS_CHECK(x.size() == dims_.size());
  Point p(x.size());
  for (std::size_t d = 0; d < x.size(); ++d) {
    const double hi = static_cast<double>(dims_[d].values.size() - 1);
    const double clamped = std::clamp(x[d], 0.0, hi);
    p[d] = static_cast<std::size_t>(std::llround(clamped));
  }
  return p;
}

bool SearchSpace::advance(Point& p) const {
  ARCS_CHECK(valid(p));
  for (std::size_t d = p.size(); d-- > 0;) {
    if (++p[d] < dims_[d].values.size()) return true;
    p[d] = 0;
  }
  return false;  // wrapped: end of space
}

bool SearchSpace::advance_canonical(Point& p) const {
  ARCS_CHECK(valid(p));
  if (!conditional_) return advance(p);
  ARCS_CHECK_MSG(is_canonical(p),
                 "advance_canonical needs a canonical point "
                 "(start from canonical_origin())");
  for (std::size_t d = p.size(); d-- > 0;) {
    // Inactive dimensions are pinned at their canonical index: skipping
    // them is exactly what removes the flat grid's duplicate points.
    if (!active(p, d)) continue;
    if (++p[d] < dims_[d].values.size()) {
      // Reset the suffix. Incrementing p[d] may flip later dimensions'
      // activation, so re-canonicalize: active suffix dims restart at 0,
      // inactive ones collapse.
      for (std::size_t e = d + 1; e < p.size(); ++e) p[e] = 0;
      p = canonicalize(std::move(p));
      return true;
    }
    p[d] = 0;
    // Carrying through index 0 keeps the prefix unchanged, so this
    // dimension's activation state is unaffected; continue leftward.
  }
  p = canonicalize(std::move(p));  // restore the pinned suffix entries
  return false;  // wrapped: end of the canonical enumeration
}

std::uint64_t SearchSpace::rank(const Point& p) const {
  ARCS_CHECK(valid(p));
  std::uint64_t r = 0;
  for (std::size_t d = 0; d < p.size(); ++d)
    r = r * dims_[d].values.size() + p[d];
  return r;
}

std::uint64_t SearchSpace::canonical_rank(const Point& p) const {
  return rank(canonicalize(p));
}

}  // namespace arcs::harmony
