#include "harmony/space.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace arcs::harmony {

SearchSpace::SearchSpace(std::vector<Dimension> dimensions)
    : dims_(std::move(dimensions)) {
  ARCS_CHECK_MSG(!dims_.empty(), "search space needs >= 1 dimension");
  for (const auto& d : dims_)
    ARCS_CHECK_MSG(!d.values.empty(),
                   "dimension '" + d.name + "' has no values");
}

const Dimension& SearchSpace::dimension(std::size_t d) const {
  ARCS_CHECK(d < dims_.size());
  return dims_[d];
}

std::uint64_t SearchSpace::size() const {
  std::uint64_t n = 1;
  for (const auto& d : dims_) n *= d.values.size();
  return n;
}

std::vector<Value> SearchSpace::decode(const Point& p) const {
  ARCS_CHECK(valid(p));
  std::vector<Value> out(p.size());
  for (std::size_t d = 0; d < p.size(); ++d)
    out[d] = dims_[d].values[p[d]];
  return out;
}

bool SearchSpace::valid(const Point& p) const {
  if (p.size() != dims_.size()) return false;
  for (std::size_t d = 0; d < p.size(); ++d)
    if (p[d] >= dims_[d].values.size()) return false;
  return true;
}

Point SearchSpace::round(const std::vector<double>& x) const {
  ARCS_CHECK(x.size() == dims_.size());
  Point p(x.size());
  for (std::size_t d = 0; d < x.size(); ++d) {
    const double hi = static_cast<double>(dims_[d].values.size() - 1);
    const double clamped = std::clamp(x[d], 0.0, hi);
    p[d] = static_cast<std::size_t>(std::llround(clamped));
  }
  return p;
}

bool SearchSpace::advance(Point& p) const {
  ARCS_CHECK(valid(p));
  for (std::size_t d = p.size(); d-- > 0;) {
    if (++p[d] < dims_[d].values.size()) return true;
    p[d] = 0;
  }
  return false;  // wrapped: end of space
}

std::uint64_t SearchSpace::rank(const Point& p) const {
  ARCS_CHECK(valid(p));
  std::uint64_t r = 0;
  for (std::size_t d = 0; d < p.size(); ++d)
    r = r * dims_[d].values.size() + p[d];
  return r;
}

}  // namespace arcs::harmony
