// Random search over the space with a fixed trial budget — the standard
// baseline against which guided strategies are judged (ablation benches).
#pragma once

#include <limits>
#include <optional>

#include "common/rng.hpp"
#include "harmony/strategy.hpp"

namespace arcs::harmony {

class RandomSearch final : public Strategy {
 public:
  explicit RandomSearch(std::size_t budget, std::uint64_t seed = 1);

  Point next(const SearchSpace& space) override;
  void report(const SearchSpace& space, const Point& point,
              double value) override;
  bool converged(const SearchSpace& space) const override;
  Point best(const SearchSpace& space) const override;
  double best_value() const override { return best_value_; }
  std::string_view name() const override { return "random"; }

 private:
  std::size_t budget_;
  std::size_t evaluated_ = 0;
  common::Rng rng_;
  std::optional<Point> pending_;
  std::optional<Point> best_;
  double best_value_ = std::numeric_limits<double>::infinity();
};

}  // namespace arcs::harmony
