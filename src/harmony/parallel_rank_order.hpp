// Parallel Rank Order (PRO), the other simplex method Active Harmony
// implements (Tabatabaee et al.). A size-N simplex reflects every
// non-best vertex through the best one each round; if any reflected
// vertex improves on the incumbent best the reflected simplex is
// accepted, otherwise the simplex contracts toward the best vertex.
//
// Note: the original PRO evaluates the candidates of a round in parallel
// across nodes; under ARCS's one-measurement-per-region-execution protocol
// the evaluations are sequential, which preserves the search trajectory
// (rank ordering uses only completed rounds).
#pragma once

#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "harmony/strategy.hpp"

namespace arcs::harmony {

struct ParallelRankOrderOptions {
  std::size_t max_evals = 80;
  double coord_tol = 0.6;
  /// Simplex size; 0 = 2 * dimensions (PRO's usual choice).
  std::size_t simplex_size = 0;
  double contraction = 0.5;
};

class ParallelRankOrder final : public Strategy {
 public:
  explicit ParallelRankOrder(ParallelRankOrderOptions options = {},
                             std::uint64_t seed = 1);

  Point next(const SearchSpace& space) override;
  void report(const SearchSpace& space, const Point& point,
              double value) override;
  bool converged(const SearchSpace& space) const override;
  Point best(const SearchSpace& space) const override;
  double best_value() const override { return best_seen_f_; }
  std::string_view name() const override { return "pro"; }

 private:
  struct Vertex {
    std::vector<double> x;
    double f = std::numeric_limits<double>::infinity();
  };

  void ensure_initialized(const SearchSpace& space);
  void start_round(const SearchSpace& space);
  double simplex_coord_spread() const;
  std::size_t best_index() const;

  ParallelRankOrderOptions opts_;
  common::Rng rng_;
  bool initialized_ = false;
  bool converged_ = false;

  std::vector<Vertex> simplex_;
  enum class Phase { Build, Reflect, Contract } phase_ = Phase::Build;
  /// Candidates of the current round and where their results go.
  std::vector<std::vector<double>> queue_;
  std::vector<std::size_t> queue_slots_;
  std::vector<double> queue_values_;
  std::size_t queue_next_ = 0;

  std::size_t evals_ = 0;
  std::vector<double> best_seen_;
  double best_seen_f_ = std::numeric_limits<double>::infinity();
};

}  // namespace arcs::harmony
