#include "harmony/session.hpp"

#include "common/check.hpp"

namespace arcs::harmony {

Session::Session(SearchSpace space, std::unique_ptr<Strategy> strategy,
                 SessionOptions options)
    : space_(std::move(space)),
      strategy_(std::move(strategy)),
      options_(options) {
  ARCS_CHECK(strategy_ != nullptr);
}

std::vector<Value> Session::next_values() {
  ARCS_CHECK_MSG(!pending_.has_value(),
                 "next_values() called twice without report()");
  Point p = strategy_->next(space_);
  ARCS_CHECK(space_.valid(p));
  if (options_.memoize) {
    // Serve re-proposed points from the cache so the client only spends
    // real measurements on novel configurations. Keys are canonical
    // ranks: on a conditional space, two proposals differing only in
    // inactive coordinates are the same configuration and share one
    // cache entry.
    std::size_t replays = 0;
    while (!strategy_->converged(space_) && replays < options_.max_replays) {
      const auto it = memo_.find(space_.canonical_rank(p));
      if (it == memo_.end()) break;
      strategy_->report(space_, p, it->second);
      ++cache_hits_;
      ++replays;
      p = strategy_->next(space_);
      ARCS_CHECK(space_.valid(p));
    }
  }
  pending_ = p;
  return space_.decode(p);
}

void Session::report(double value) {
  ARCS_CHECK_MSG(pending_.has_value(), "report() without next_values()");
  strategy_->report(space_, *pending_, value);
  if (options_.memoize) memo_[space_.canonical_rank(*pending_)] = value;
  pending_.reset();
  ++evaluations_;
}

bool Session::converged() const { return strategy_->converged(space_); }

std::vector<Value> Session::best_values() const {
  return space_.decode(strategy_->best(space_));
}

double Session::best_value() const { return strategy_->best_value(); }

}  // namespace arcs::harmony
