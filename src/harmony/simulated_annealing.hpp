// Simulated annealing over the discrete index space — a fifth search
// method for the ablation suite. Proposes a random neighbor (one or two
// dimensions perturbed by a geometric step that cools over time) and
// accepts worse points with probability exp(-delta / T), T cooling
// geometrically per evaluation.
#pragma once

#include <limits>
#include <optional>

#include "common/rng.hpp"
#include "harmony/strategy.hpp"

namespace arcs::harmony {

struct SimulatedAnnealingOptions {
  std::size_t max_evals = 60;
  /// Initial temperature as a fraction of the first measured value.
  double initial_temp_frac = 0.3;
  /// Geometric cooling factor per evaluation.
  double cooling = 0.92;
  /// Initial neighbor step as a fraction of each dimension's range.
  double initial_step = 0.4;
};

class SimulatedAnnealing final : public Strategy {
 public:
  explicit SimulatedAnnealing(SimulatedAnnealingOptions options = {},
                              std::uint64_t seed = 1);

  Point next(const SearchSpace& space) override;
  void report(const SearchSpace& space, const Point& point,
              double value) override;
  bool converged(const SearchSpace& space) const override;
  Point best(const SearchSpace& space) const override;
  double best_value() const override { return best_value_; }
  std::string_view name() const override { return "annealing"; }

  std::size_t evaluations() const { return evals_; }

 private:
  Point propose_neighbor(const SearchSpace& space) const;

  SimulatedAnnealingOptions opts_;
  mutable common::Rng rng_;
  std::optional<Point> current_;
  double current_value_ = std::numeric_limits<double>::infinity();
  std::optional<Point> candidate_;
  std::optional<Point> best_;
  double best_value_ = std::numeric_limits<double>::infinity();
  double temperature_ = 0.0;
  std::size_t evals_ = 0;
};

}  // namespace arcs::harmony
