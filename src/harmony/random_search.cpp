#include "harmony/random_search.hpp"

#include "common/check.hpp"

namespace arcs::harmony {

RandomSearch::RandomSearch(std::size_t budget, std::uint64_t seed)
    : budget_(budget), rng_(seed) {
  ARCS_CHECK(budget_ >= 1);
}

Point RandomSearch::next(const SearchSpace& space) {
  if (converged(space)) return best(space);
  Point p(space.num_dimensions());
  for (std::size_t d = 0; d < p.size(); ++d)
    p[d] = rng_.uniform_index(space.dimension(d).values.size());
  pending_ = p;
  return p;
}

void RandomSearch::report(const SearchSpace& /*space*/, const Point& point,
                          double value) {
  if (evaluated_ >= budget_) return;
  ARCS_CHECK_MSG(pending_ && point == *pending_,
                 "report does not match the proposed point");
  pending_.reset();
  ++evaluated_;
  if (value < best_value_) {
    best_value_ = value;
    best_ = point;
  }
}

bool RandomSearch::converged(const SearchSpace& /*space*/) const {
  return evaluated_ >= budget_;
}

Point RandomSearch::best(const SearchSpace& /*space*/) const {
  ARCS_CHECK_MSG(best_.has_value(), "random search has no measurements yet");
  return *best_;
}

}  // namespace arcs::harmony
