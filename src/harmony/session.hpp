// Tuning session: the client-facing Active Harmony API.
//
// ARCS creates one Session per OpenMP region ("the policy starts an Active
// Harmony tuning session for that parallel region"). The session enforces
// the propose/measure protocol, tracks evaluation counts, and exposes the
// converged best configuration.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "harmony/strategy.hpp"

namespace arcs::harmony {

struct SessionOptions {
  /// Cache evaluated points (Active Harmony's point memoization): when
  /// the strategy re-proposes a point that was already measured, the
  /// cached value is reported back internally and the next *novel* point
  /// is returned to the client — saving a real measurement.
  bool memoize = false;
  /// Bound on internal cache-replay steps per next_values() call.
  std::size_t max_replays = 16;
};

class Session {
 public:
  Session(SearchSpace space, std::unique_ptr<Strategy> strategy,
          SessionOptions options = {});

  /// Proposes the values to test next (the converged best once done).
  /// Must alternate with report().
  std::vector<Value> next_values();

  /// Reports the measured objective for the last next_values() proposal.
  void report(double value);

  bool converged() const;

  /// Best values observed so far. Requires >= 1 completed report.
  std::vector<Value> best_values() const;
  double best_value() const;

  /// Measurements the client actually performed.
  std::size_t evaluations() const { return evaluations_; }
  /// Strategy steps served from the memoization cache.
  std::size_t cache_hits() const { return cache_hits_; }

  const SearchSpace& space() const { return space_; }
  const Strategy& strategy() const { return *strategy_; }

 private:
  SearchSpace space_;
  std::unique_ptr<Strategy> strategy_;
  SessionOptions options_;
  std::optional<Point> pending_;
  std::size_t evaluations_ = 0;
  std::size_t cache_hits_ = 0;
  std::map<std::uint64_t, double> memo_;
};

}  // namespace arcs::harmony
