// Exhaustive search: visit every point once, in lexicographic order.
// This is the strategy ARCS-Offline uses for its search execution
// ("the method uses an exhaustive search to find the best configuration
// during one execution, then executes again with that optimal
// configuration").
#pragma once

#include <limits>
#include <optional>

#include "harmony/strategy.hpp"

namespace arcs::harmony {

class ExhaustiveSearch final : public Strategy {
 public:
  Point next(const SearchSpace& space) override;
  void report(const SearchSpace& space, const Point& point,
              double value) override;
  bool converged(const SearchSpace& space) const override;
  Point best(const SearchSpace& space) const override;
  double best_value() const override { return best_value_; }
  std::string_view name() const override { return "exhaustive"; }

 private:
  std::optional<Point> cursor_;
  bool done_ = false;
  std::optional<Point> best_;
  double best_value_ = std::numeric_limits<double>::infinity();
};

}  // namespace arcs::harmony
