// Nelder–Mead simplex search on the (relaxed) index space.
//
// This is the method ARCS-Online uses ("uses the Nelder-Mead search
// algorithm to search for and use an optimal configuration in the same
// execution"). The simplex lives in continuous index coordinates; every
// proposal is rounded to the nearest valid discrete point for evaluation,
// which matches how Active Harmony applies simplex methods to enumerated
// parameters.
//
// The propose/measure protocol makes the classic algorithm a state
// machine: each report() advances exactly one step (initial-vertex
// evaluation, reflection, expansion, contraction, or one shrink vertex).
#pragma once

#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "harmony/strategy.hpp"

namespace arcs::harmony {

struct NelderMeadOptions {
  std::size_t max_evals = 40;
  /// Converged when the simplex fits inside a box of this many index units
  /// per dimension (0.6 < 1 step means all vertices round identically).
  double coord_tol = 0.6;
  /// ...and the relative objective spread is below this.
  double value_tol = 0.03;
  double reflection = 1.0;   // alpha
  double expansion = 2.0;    // gamma
  double contraction = 0.5;  // rho
  double shrink = 0.5;       // sigma
  /// Initial step as a fraction of each dimension's index range.
  double initial_step = 0.35;
  /// Random jitter applied to the initial simplex center, as a fraction
  /// of each dimension's index range. The default breaks exact ties on
  /// plateaued discrete landscapes; ModelSeeded sets 0 so the very first
  /// proposal IS the model's prediction.
  double center_jitter = 0.05;
  /// Fractional position of the initial simplex center per dimension
  /// (0 = first value, 1 = last). Empty = 0.5 everywhere. ARCS seeds the
  /// threads dimension near the default (high) end so early trials are
  /// not catastrophic.
  std::vector<double> initial_center_frac;
};

class NelderMead final : public Strategy {
 public:
  explicit NelderMead(NelderMeadOptions options = {},
                      std::uint64_t seed = 1);

  Point next(const SearchSpace& space) override;
  void report(const SearchSpace& space, const Point& point,
              double value) override;
  bool converged(const SearchSpace& space) const override;
  Point best(const SearchSpace& space) const override;
  double best_value() const override;
  std::string_view name() const override { return "nelder-mead"; }

  std::size_t evaluations() const { return evals_; }

 private:
  enum class Phase {
    BuildSimplex,
    Reflect,
    Expand,
    ContractOutside,
    ContractInside,
    ShrinkEval,
  };

  struct Vertex {
    std::vector<double> x;
    double f = std::numeric_limits<double>::infinity();
  };

  void ensure_initialized(const SearchSpace& space);
  void begin_iteration(const SearchSpace& space);
  void accept_replacement(std::vector<double> x, double f,
                          const SearchSpace& space);
  std::vector<double> centroid_excluding_worst() const;
  double simplex_coord_spread() const;
  double simplex_value_spread() const;
  const Vertex& best_vertex() const;

  NelderMeadOptions opts_;
  common::Rng rng_;
  bool initialized_ = false;
  bool converged_ = false;
  Phase phase_ = Phase::BuildSimplex;
  std::vector<Vertex> simplex_;             // sorted ascending by f
  std::vector<std::vector<double>> build_queue_;
  std::size_t build_next_ = 0;
  std::vector<double> candidate_;           // point awaiting measurement
  std::vector<double> reflected_;           // xr (kept across Expand)
  double reflected_f_ = 0.0;
  std::size_t evals_ = 0;
  // Global best across every evaluation (the simplex can move away from a
  // good point; ARCS should still deploy the best ever measured).
  std::vector<double> best_seen_;
  double best_seen_f_ = std::numeric_limits<double>::infinity();
};

}  // namespace arcs::harmony
