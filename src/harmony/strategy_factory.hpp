// Factory for search strategies, so clients (ARCS) can select a method by
// kind without knowing concrete types.
#pragma once

#include <cstdint>
#include <memory>

#include "harmony/nelder_mead.hpp"
#include "harmony/parallel_rank_order.hpp"
#include "harmony/simulated_annealing.hpp"
#include "harmony/strategy.hpp"

namespace arcs::harmony {

struct ModelSeededOptions {
  /// Where the prediction sits in index space, one fraction per
  /// dimension (0 = first candidate value, 1 = last). Must be set by the
  /// caller — it is the whole point of the strategy.
  std::vector<double> center_frac;
  /// Refinement radius: much smaller than plain Nelder–Mead's 0.35
  /// because the start is presumed near-optimal.
  double initial_step = 0.15;
};

struct StrategyOptions {
  std::uint64_t seed = 1;
  /// Random search trial budget.
  std::size_t random_budget = 30;
  NelderMeadOptions nelder_mead;
  ParallelRankOrderOptions pro;
  SimulatedAnnealingOptions annealing;
  ModelSeededOptions model_seeded;
};

std::unique_ptr<Strategy> make_strategy(StrategyKind kind,
                                        const StrategyOptions& options = {});

}  // namespace arcs::harmony
