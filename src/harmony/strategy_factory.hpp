// Factory for search strategies, so clients (ARCS) can select a method by
// kind without knowing concrete types.
#pragma once

#include <cstdint>
#include <memory>

#include "harmony/nelder_mead.hpp"
#include "harmony/parallel_rank_order.hpp"
#include "harmony/simulated_annealing.hpp"
#include "harmony/strategy.hpp"

namespace arcs::harmony {

struct StrategyOptions {
  std::uint64_t seed = 1;
  /// Random search trial budget.
  std::size_t random_budget = 30;
  NelderMeadOptions nelder_mead;
  ParallelRankOrderOptions pro;
  SimulatedAnnealingOptions annealing;
};

std::unique_ptr<Strategy> make_strategy(StrategyKind kind,
                                        const StrategyOptions& options = {});

}  // namespace arcs::harmony
