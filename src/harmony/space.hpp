// Discrete search spaces for Active Harmony-style tuning sessions.
//
// A SearchSpace is an ordered list of named dimensions, each an explicit
// list of values (Active Harmony's "enumerated" parameters — exactly what
// ARCS tunes: thread counts, schedule kinds, chunk sizes; Table I of the
// paper). Points are index vectors into the dimensions; search strategies
// work in index space and decode only at the edges.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace arcs::harmony {

using Value = long long;

struct Dimension {
  std::string name;
  std::vector<Value> values;  ///< candidate values, in search order
};

/// A candidate configuration: one index per dimension.
using Point = std::vector<std::size_t>;

class SearchSpace {
 public:
  SearchSpace() = default;
  explicit SearchSpace(std::vector<Dimension> dimensions);

  std::size_t num_dimensions() const { return dims_.size(); }
  const Dimension& dimension(std::size_t d) const;

  /// Total number of points (product of dimension sizes).
  std::uint64_t size() const;

  /// Decodes a point into concrete values.
  std::vector<Value> decode(const Point& p) const;

  /// True if every index is in range.
  bool valid(const Point& p) const;

  /// Clamps continuous coordinates into index range and rounds to the
  /// nearest valid point (used by simplex strategies).
  Point round(const std::vector<double>& x) const;

  /// Lexicographic successor; returns false at the end of the space.
  bool advance(Point& p) const;

  /// The all-zeros origin point.
  Point origin() const { return Point(dims_.size(), 0); }

  /// Dense rank of a point (mixed-radix), for memoization keys.
  std::uint64_t rank(const Point& p) const;

 private:
  std::vector<Dimension> dims_;
};

}  // namespace arcs::harmony
