// Discrete search spaces for Active Harmony-style tuning sessions.
//
// A SearchSpace is an ordered list of named dimensions, each an explicit
// list of values (Active Harmony's "enumerated" parameters — exactly what
// ARCS tunes: thread counts, schedule kinds, chunk sizes; Table I of the
// paper). Points are index vectors into the dimensions; search strategies
// work in index space and decode only at the edges.
//
// Conditional (hierarchical) spaces: a dimension may declare an
// *activation predicate* on an earlier dimension — e.g. `chunk` is only
// active while `schedule` is dynamic or guided (the ytopt/ConfigSpace
// InCondition model). When the predicate does not hold, the dimension is
// *inactive* and collapses to its canonical index, so two points that
// differ only in inactive coordinates canonicalize, decode, hash, cache,
// and history-key identically. Strategies keep proposing full index
// vectors; canonicalization happens at the Session/decode edges, and
// canonical enumeration (advance_canonical) visits every *distinct*
// configuration exactly once — that is the conditional space's entire
// eval-count saving.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace arcs::harmony {

using Value = long long;

/// How a dimension's values relate to each other — surrogate models and
/// distance metrics treat them differently (ordinal values embed on a
/// line; categorical/boolean values are one-hot).
enum class DimensionKind : std::uint8_t {
  Ordinal,      ///< ordered values (threads, chunk, frequency)
  Categorical,  ///< unordered choices (schedule kind)
  Boolean,      ///< two-valued flag (placement spread/close)
};

std::string_view to_string(DimensionKind kind);

/// Activation predicate: the owning dimension participates in the
/// configuration only while the parent dimension (an *earlier* index)
/// holds one of the allowed value indices.
struct Activation {
  std::size_t parent = 0;              ///< parent dimension index
  std::vector<std::size_t> allowed;    ///< activating parent value indices
};

struct Dimension {
  std::string name;
  std::vector<Value> values;  ///< candidate values, in search order
  DimensionKind kind = DimensionKind::Ordinal;
  /// Empty = unconditional (always active).
  std::optional<Activation> activation = std::nullopt;
  /// Index this dimension collapses to while inactive (the "don't care"
  /// representative — ARCS uses the "default" value's index).
  std::size_t canonical = 0;
};

/// A candidate configuration: one index per dimension.
using Point = std::vector<std::size_t>;

class SearchSpace {
 public:
  SearchSpace() = default;
  explicit SearchSpace(std::vector<Dimension> dimensions);

  std::size_t num_dimensions() const { return dims_.size(); }
  const Dimension& dimension(std::size_t d) const;

  /// Total number of points (product of dimension sizes) — the flat-grid
  /// count, counting inactive-coordinate duplicates separately.
  std::uint64_t size() const;

  /// Number of *distinct* configurations: inactive dimensions contribute
  /// one choice, so the count is the sum over parent assignments of the
  /// product of active extents. Equals size() for unconditional spaces.
  std::uint64_t num_canonical_points() const;

  /// True when any dimension carries an activation predicate.
  bool conditional() const { return conditional_; }

  /// True when dimension `d` is active under `p`'s (canonicalized)
  /// parent coordinates.
  bool active(const Point& p, std::size_t d) const;

  /// Collapses every inactive dimension to its canonical index
  /// (left-to-right, so cascaded conditions resolve deterministically).
  /// Idempotent; identity for unconditional spaces.
  Point canonicalize(Point p) const;

  /// True iff canonicalize(p) == p.
  bool is_canonical(const Point& p) const;

  /// Decodes a point into concrete values (canonicalizing first, so two
  /// points differing only in inactive coordinates decode identically).
  std::vector<Value> decode(const Point& p) const;

  /// True if every index is in range.
  bool valid(const Point& p) const;

  /// Clamps continuous coordinates into index range and rounds to the
  /// nearest valid point (used by simplex strategies).
  Point round(const std::vector<double>& x) const;

  /// Lexicographic successor over the full flat grid; returns false at
  /// the end of the space.
  bool advance(Point& p) const;

  /// Lexicographic successor restricted to canonical points: inactive
  /// dimensions stay pinned at their canonical index, so every distinct
  /// configuration is visited exactly once. `p` must be canonical
  /// (start from canonical_origin()). Identical to advance() on
  /// unconditional spaces.
  bool advance_canonical(Point& p) const;

  /// The all-zeros origin point.
  Point origin() const { return Point(dims_.size(), 0); }

  /// First canonical point in enumeration order.
  Point canonical_origin() const { return canonicalize(origin()); }

  /// Dense rank of a point (mixed-radix), for memoization keys. Two
  /// points differing only in inactive coordinates have different ranks;
  /// hash/cache keys must rank the canonicalized point — see
  /// canonical_rank().
  std::uint64_t rank(const Point& p) const;

  /// rank(canonicalize(p)) — the key under which all representatives of
  /// one configuration collide.
  std::uint64_t canonical_rank(const Point& p) const;

 private:
  std::vector<Dimension> dims_;
  bool conditional_ = false;
};

}  // namespace arcs::harmony
