// Search strategy interface (Active Harmony's search methods).
//
// Strategies run a strict propose/measure loop: the client calls next()
// for a candidate point, measures it, and calls report() with the result
// (lower is better — ARCS reports region execution time). The Session
// wrapper enforces the alternation; strategies may assume it.
#pragma once

#include "harmony/space.hpp"

namespace arcs::harmony {

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// The next point to evaluate. After convergence, returns best().
  virtual Point next(const SearchSpace& space) = 0;

  /// Reports the measured objective of the point returned by the previous
  /// next() call (lower is better).
  virtual void report(const SearchSpace& space, const Point& point,
                      double value) = 0;

  virtual bool converged(const SearchSpace& space) const = 0;

  /// Best point observed so far (valid once >= 1 report arrived).
  virtual Point best(const SearchSpace& space) const = 0;
  virtual double best_value() const = 0;

  virtual std::string_view name() const = 0;
};

enum class StrategyKind {
  Exhaustive,         ///< paper's ARCS-Offline search pass
  NelderMead,         ///< paper's ARCS-Online
  ParallelRankOrder,  ///< Active Harmony's PRO method
  Random,             ///< baseline for ablations
  SimulatedAnnealing, ///< extension: escapes the plateaus NM stalls on
  /// Nelder–Mead started at a learned model's predicted configuration
  /// (jitter-free, small initial step) instead of the space center — the
  /// model layer's "search demoted to refinement" mode.
  ModelSeeded,
  /// Bayesian-optimization-style surrogate search (src/search/): a
  /// deterministic seeded init sample, an incremental ridge/RBF
  /// surrogate, and an expected-improvement acquisition argmaxed over
  /// the canonical enumeration. Built by search::make_strategy.
  Surrogate,
  /// Strategy portfolio racer (src/search/): runs NM / PRO /
  /// ModelSeeded / Surrogate against each other per region under a
  /// successive-halving eval budget and keeps the incumbent. Built by
  /// search::make_strategy.
  Portfolio,
};

std::string_view to_string(StrategyKind kind);

}  // namespace arcs::harmony
