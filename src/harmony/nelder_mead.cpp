#include "harmony/nelder_mead.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace arcs::harmony {

NelderMead::NelderMead(NelderMeadOptions options, std::uint64_t seed)
    : opts_(options), rng_(seed) {
  ARCS_CHECK(opts_.max_evals >= 2);
}

void NelderMead::ensure_initialized(const SearchSpace& space) {
  if (initialized_) return;
  initialized_ = true;
  const std::size_t d = space.num_dimensions();

  // Initial simplex: the midpoint plus one step along each dimension;
  // a tiny jitter breaks exact ties on plateaued discrete landscapes.
  std::vector<double> start(d);
  std::vector<double> step(d);
  for (std::size_t i = 0; i < d; ++i) {
    const double hi = static_cast<double>(space.dimension(i).values.size() - 1);
    const double center = i < opts_.initial_center_frac.size()
                              ? opts_.initial_center_frac[i]
                              : 0.5;
    start[i] = std::clamp(
        center * hi + opts_.center_jitter * rng_.uniform(-1.0, 1.0) * hi,
        0.0, hi);
    step[i] = std::max(1.0, opts_.initial_step * hi);
  }
  build_queue_.push_back(start);
  for (std::size_t i = 0; i < d; ++i) {
    std::vector<double> v = start;
    const double hi = static_cast<double>(space.dimension(i).values.size() - 1);
    v[i] = v[i] + step[i] <= hi ? v[i] + step[i] : v[i] - step[i];
    build_queue_.push_back(std::move(v));
  }
  build_next_ = 0;
  phase_ = Phase::BuildSimplex;
}

Point NelderMead::next(const SearchSpace& space) {
  ensure_initialized(space);
  if (converged_) return best(space);
  switch (phase_) {
    case Phase::BuildSimplex:
    case Phase::ShrinkEval:
      candidate_ = build_queue_[build_next_];
      break;
    case Phase::Reflect:
    case Phase::Expand:
    case Phase::ContractOutside:
    case Phase::ContractInside:
      // candidate_ already holds xr / xe / xc.
      break;
  }
  return space.round(candidate_);
}

void NelderMead::report(const SearchSpace& space, const Point& /*point*/,
                        double value) {
  ensure_initialized(space);
  if (converged_) return;  // informational post-convergence report
  ++evals_;
  if (value < best_seen_f_) {
    best_seen_f_ = value;
    best_seen_ = candidate_;
  }

  switch (phase_) {
    case Phase::BuildSimplex:
    case Phase::ShrinkEval: {
      if (phase_ == Phase::BuildSimplex) {
        simplex_.push_back({candidate_, value});
      } else {
        // Shrunk vertices replace slots 1..d as their values arrive.
        simplex_[build_next_ + 1] = {candidate_, value};
      }
      ++build_next_;
      if (build_next_ < build_queue_.size()) break;
      build_queue_.clear();
      begin_iteration(space);
      break;
    }
    case Phase::Reflect: {
      reflected_ = candidate_;
      reflected_f_ = value;
      const std::size_t last = simplex_.size() - 1;
      const double f_best = simplex_.front().f;
      const double f_second_worst = simplex_[last - 1].f;
      const double f_worst = simplex_[last].f;
      const auto c = centroid_excluding_worst();
      if (value < f_best) {
        // Try expansion: xe = c + gamma * (xr - c).
        candidate_.resize(c.size());
        for (std::size_t i = 0; i < c.size(); ++i)
          candidate_[i] = c[i] + opts_.expansion * (reflected_[i] - c[i]);
        phase_ = Phase::Expand;
      } else if (value < f_second_worst) {
        accept_replacement(reflected_, value, space);
      } else if (value < f_worst) {
        // Outside contraction: xc = c + rho * (xr - c).
        candidate_.resize(c.size());
        for (std::size_t i = 0; i < c.size(); ++i)
          candidate_[i] = c[i] + opts_.contraction * (reflected_[i] - c[i]);
        phase_ = Phase::ContractOutside;
      } else {
        // Inside contraction: xc = c + rho * (xw - c).
        const auto& xw = simplex_.back().x;
        candidate_.resize(c.size());
        for (std::size_t i = 0; i < c.size(); ++i)
          candidate_[i] = c[i] + opts_.contraction * (xw[i] - c[i]);
        phase_ = Phase::ContractInside;
      }
      break;
    }
    case Phase::Expand: {
      if (value < reflected_f_)
        accept_replacement(candidate_, value, space);
      else
        accept_replacement(reflected_, reflected_f_, space);
      break;
    }
    case Phase::ContractOutside: {
      if (value <= reflected_f_) {
        accept_replacement(candidate_, value, space);
      } else {
        // Shrink toward the best vertex.
        build_queue_.clear();
        for (std::size_t i = 1; i < simplex_.size(); ++i) {
          std::vector<double> v(simplex_[i].x.size());
          for (std::size_t k = 0; k < v.size(); ++k)
            v[k] = simplex_[0].x[k] +
                   opts_.shrink * (simplex_[i].x[k] - simplex_[0].x[k]);
          build_queue_.push_back(std::move(v));
        }
        build_next_ = 0;
        phase_ = Phase::ShrinkEval;
      }
      break;
    }
    case Phase::ContractInside: {
      if (value < simplex_.back().f) {
        accept_replacement(candidate_, value, space);
      } else {
        build_queue_.clear();
        for (std::size_t i = 1; i < simplex_.size(); ++i) {
          std::vector<double> v(simplex_[i].x.size());
          for (std::size_t k = 0; k < v.size(); ++k)
            v[k] = simplex_[0].x[k] +
                   opts_.shrink * (simplex_[i].x[k] - simplex_[0].x[k]);
          build_queue_.push_back(std::move(v));
        }
        build_next_ = 0;
        phase_ = Phase::ShrinkEval;
      }
      break;
    }
  }

  if (evals_ >= opts_.max_evals) converged_ = true;
}

void NelderMead::accept_replacement(std::vector<double> x, double f,
                                    const SearchSpace& space) {
  simplex_.back() = {std::move(x), f};
  begin_iteration(space);
}

void NelderMead::begin_iteration(const SearchSpace& space) {
  std::stable_sort(simplex_.begin(), simplex_.end(),
                   [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
  if (simplex_coord_spread() <= opts_.coord_tol &&
      simplex_value_spread() <= opts_.value_tol) {
    converged_ = true;
    return;
  }
  // Propose reflection: xr = c + alpha * (c - xw).
  const auto c = centroid_excluding_worst();
  const auto& xw = simplex_.back().x;
  candidate_.resize(c.size());
  for (std::size_t i = 0; i < c.size(); ++i)
    candidate_[i] = c[i] + opts_.reflection * (c[i] - xw[i]);
  // Keep proposals inside the box so rounding stays meaningful.
  for (std::size_t i = 0; i < c.size(); ++i) {
    const double hi = static_cast<double>(space.dimension(i).values.size() - 1);
    candidate_[i] = std::clamp(candidate_[i], 0.0, hi);
  }
  phase_ = Phase::Reflect;
}

std::vector<double> NelderMead::centroid_excluding_worst() const {
  ARCS_CHECK(simplex_.size() >= 2);
  std::vector<double> c(simplex_.front().x.size(), 0.0);
  for (std::size_t i = 0; i + 1 < simplex_.size(); ++i)
    for (std::size_t k = 0; k < c.size(); ++k) c[k] += simplex_[i].x[k];
  const double n = static_cast<double>(simplex_.size() - 1);
  for (double& v : c) v /= n;
  return c;
}

double NelderMead::simplex_coord_spread() const {
  double spread = 0.0;
  const std::size_t d = simplex_.front().x.size();
  for (std::size_t k = 0; k < d; ++k) {
    double lo = simplex_.front().x[k];
    double hi = lo;
    for (const auto& v : simplex_) {
      lo = std::min(lo, v.x[k]);
      hi = std::max(hi, v.x[k]);
    }
    spread = std::max(spread, hi - lo);
  }
  return spread;
}

double NelderMead::simplex_value_spread() const {
  const double f_lo = simplex_.front().f;
  const double f_hi = simplex_.back().f;
  return f_lo > 0 ? (f_hi - f_lo) / f_lo : f_hi - f_lo;
}

const NelderMead::Vertex& NelderMead::best_vertex() const {
  ARCS_CHECK(!simplex_.empty());
  return *std::min_element(
      simplex_.begin(), simplex_.end(),
      [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
}

bool NelderMead::converged(const SearchSpace& /*space*/) const {
  return converged_;
}

Point NelderMead::best(const SearchSpace& space) const {
  ARCS_CHECK_MSG(!best_seen_.empty(), "Nelder-Mead has no measurements yet");
  return space.round(best_seen_);
}

double NelderMead::best_value() const { return best_seen_f_; }

}  // namespace arcs::harmony
