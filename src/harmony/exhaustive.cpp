#include "harmony/exhaustive.hpp"

#include "common/check.hpp"

namespace arcs::harmony {

Point ExhaustiveSearch::next(const SearchSpace& space) {
  if (done_) return best(space);
  // Canonical enumeration: on a conditional space this skips every
  // point that differs from an earlier one only in inactive coordinates
  // — the whole eval-count saving of conditional dimensions. On a flat
  // space it is the plain lexicographic walk.
  if (!cursor_) cursor_ = space.canonical_origin();
  return *cursor_;
}

void ExhaustiveSearch::report(const SearchSpace& space, const Point& point,
                              double value) {
  if (done_) return;  // post-convergence reports are informational
  ARCS_CHECK_MSG(cursor_ && point == *cursor_,
                 "exhaustive search expects reports in proposal order");
  if (value < best_value_) {
    best_value_ = value;
    best_ = point;
  }
  if (!space.advance_canonical(*cursor_)) done_ = true;
}

bool ExhaustiveSearch::converged(const SearchSpace& /*space*/) const {
  return done_;
}

Point ExhaustiveSearch::best(const SearchSpace& space) const {
  ARCS_CHECK_MSG(best_.has_value(),
                 "exhaustive search has no measurements yet");
  (void)space;
  return *best_;
}

}  // namespace arcs::harmony
