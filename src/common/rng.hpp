// Deterministic pseudo-random number generation.
//
// Everything in this repository that needs randomness (imbalance profiles,
// search tie-breaking, workload synthesis) threads an explicit Rng through,
// so a fixed seed reproduces an experiment bit-for-bit. The generator is
// xoshiro256** seeded via SplitMix64 — fast, high quality, and free of
// std::mt19937's platform-variance pitfalls.
#pragma once

#include <cstdint>
#include <limits>

#include "common/check.hpp"

namespace arcs::common {

/// SplitMix64 step — used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a value (useful for per-index deterministic noise).
constexpr std::uint64_t hash64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// Combine two hashes (order-dependent).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return hash64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// xoshiro256** PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    ARCS_CHECK(n > 0);
    // Lemire's nearly-divisionless bounded rejection.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    ARCS_CHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_index(span));
  }

  /// Standard normal via Box–Muller (spare cached).
  double normal();

  /// Normal with the given mean/stddev.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Lognormal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace arcs::common
