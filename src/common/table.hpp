// Console/CSV table rendering for experiment harnesses.
//
// Every bench binary prints its figure/table as an aligned console table and
// can optionally emit CSV (for replotting). Cells are strings; numeric
// helpers format with a fixed precision so the output is diff-stable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace arcs::common {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(std::string value);
  Table& cell(const char* value);
  Table& cell(double value, int decimals = 3);
  Table& cell(long long value);
  Table& cell(int value) { return cell(static_cast<long long>(value)); }
  Table& cell(std::size_t value) {
    return cell(static_cast<long long>(value));
  }

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return headers_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Aligned monospace rendering with a header rule.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (quotes only where needed).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace arcs::common
