// Minimal JSON document model, writer, and parser.
//
// Used by the bench harness (`BENCH_<artifact>.json` machine-readable
// reports) and the golden-file regression tests (parse a checked-in
// canonical report, compare field-by-field). Scope is intentionally small:
// UTF-8 pass-through strings, doubles for all numbers, ordered objects
// (insertion order is preserved so emitted reports are diff-stable).
// No third-party dependency.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace arcs::common {

class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() : kind_(Kind::Null) {}
  Json(std::nullptr_t) : kind_(Kind::Null) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}  // NOLINT(google-explicit-constructor)
  Json(double n) : kind_(Kind::Number), num_(n) {}  // NOLINT(google-explicit-constructor)
  Json(int n) : Json(static_cast<double>(n)) {}  // NOLINT(google-explicit-constructor)
  Json(long n) : Json(static_cast<double>(n)) {}  // NOLINT(google-explicit-constructor)
  Json(long long n) : Json(static_cast<double>(n)) {}  // NOLINT(google-explicit-constructor)
  Json(unsigned n) : Json(static_cast<double>(n)) {}  // NOLINT(google-explicit-constructor)
  Json(unsigned long n) : Json(static_cast<double>(n)) {}  // NOLINT(google-explicit-constructor)
  Json(unsigned long long n) : Json(static_cast<double>(n)) {}  // NOLINT(google-explicit-constructor)
  Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  Json(const char* s) : kind_(Kind::String), str_(s) {}  // NOLINT(google-explicit-constructor)

  static Json array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }

  /// Array access.
  void push_back(Json v) { items_.push_back(std::move(v)); }
  const std::vector<Json>& items() const { return items_; }
  std::size_t size() const {
    return kind_ == Kind::Object ? members_.size() : items_.size();
  }

  /// Object access. set() replaces an existing key in place (order kept).
  void set(const std::string& key, Json value);
  /// Member lookup; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Serializes. indent <= 0: compact one-line; indent > 0: pretty,
  /// `indent` spaces per level. Numbers round-trip via max_digits10.
  std::string dump(int indent = 2) const;

  /// Parses a complete JSON document. On failure returns Null and, when
  /// `error` is non-null, stores a message with the byte offset.
  static Json parse(const std::string& text, std::string* error = nullptr);

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace arcs::common
