#include "common/build_info.hpp"

// CMake injects ARCS_VERSION_STRING / ARCS_GIT_DESCRIBE for this one
// translation unit; fall back to neutral values so the file also
// compiles standalone (tests including the header never see these).
#ifndef ARCS_VERSION_STRING
#define ARCS_VERSION_STRING "0.0.0"
#endif
#ifndef ARCS_GIT_DESCRIBE
#define ARCS_GIT_DESCRIBE ""
#endif

#if defined(__has_feature)
#if __has_feature(address_sanitizer) && !defined(__SANITIZE_ADDRESS__)
#define __SANITIZE_ADDRESS__ 1
#endif
#if __has_feature(thread_sanitizer) && !defined(__SANITIZE_THREAD__)
#define __SANITIZE_THREAD__ 1
#endif
#endif

namespace arcs::common {

const BuildInfo& build_info() {
  static const BuildInfo info = [] {
    BuildInfo b;
    b.version = ARCS_VERSION_STRING;
    b.git_describe = ARCS_GIT_DESCRIBE;
#if defined(ARCS_SYNC_CHECK_ENABLED) && ARCS_SYNC_CHECK_ENABLED
    b.sync_check = true;
#endif
#if defined(__SANITIZE_THREAD__)
    b.sanitizer = "thread";
#elif defined(__SANITIZE_ADDRESS__)
    b.sanitizer = "address";
#else
    b.sanitizer = "none";
#endif
    return b;
  }();
  return info;
}

Json build_info_json() {
  const BuildInfo& info = build_info();
  Json json = Json::object();
  json.set("version", info.version);
  json.set("git", info.git_describe);
  json.set("sync_check", info.sync_check);
  json.set("sanitizer", info.sanitizer);
  return json;
}

}  // namespace arcs::common
