// Build identity: version, git revision, and compile-time feature flags.
//
// Scrapes across a fleet are only interpretable when each sample says
// what produced it — a sanitizer build's latencies must not be compared
// against a release build's, and a sync-check build explains its own
// lock-census overhead. arcsd exposes this block in `metrics_json` and
// as a prometheus `arcs_build_info` info-style gauge.
#pragma once

#include <string>

#include "common/json.hpp"

namespace arcs::common {

struct BuildInfo {
  std::string version;       ///< CMake project version ("1.0.0")
  std::string git_describe;  ///< `git describe` at configure time; "" if
                             ///< the tree was not a git checkout
  bool sync_check = false;   ///< ARCS_SYNC_CHECK compiled in
  std::string sanitizer;     ///< "none", "address", or "thread"
};

/// The process's build identity (computed once).
const BuildInfo& build_info();

/// {"version", "git", "sync_check", "sanitizer"} for metrics_json.
Json build_info_json();

}  // namespace arcs::common
