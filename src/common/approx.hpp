// Floating-point comparison with mixed relative/absolute tolerance.
//
// The golden-file regression layer compares canonical JSON reports
// field-by-field; simulator outputs are deterministic on one build but may
// drift in the last ulps across compilers/optimization levels, so golden
// comparisons use a tolerance instead of bit equality. Differential tests
// (parallel vs serial on the *same* build) keep using exact ==.
#pragma once

#include <algorithm>
#include <cmath>

namespace arcs::common {

/// Default tolerances for golden comparisons: ~1e-9 relative covers
/// reassociation-level drift while still catching any model change.
inline constexpr double kGoldenRelTol = 1e-9;
inline constexpr double kGoldenAbsTol = 1e-12;

/// True when |a-b| <= max(abs_tol, rel_tol * max(|a|, |b|)).
/// NaNs compare equal to NaNs (a golden NaN is a stable fingerprint);
/// infinities must match exactly in sign.
inline bool approx_equal(double a, double b, double rel_tol = kGoldenRelTol,
                         double abs_tol = kGoldenAbsTol) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  if (std::isinf(a) || std::isinf(b)) return a == b;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= std::max(abs_tol, rel_tol * scale);
}

}  // namespace arcs::common
