#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace arcs::common {

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> data, double p) {
  ARCS_CHECK(!data.empty());
  ARCS_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank =
      p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> data) {
  if (data.empty()) return 0.0;
  double sum = 0.0;
  for (double x : data) sum += x;
  return sum / static_cast<double>(data.size());
}

double geomean(std::span<const double> data) {
  if (data.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : data) {
    ARCS_CHECK_MSG(x > 0.0, "geomean requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(data.size()));
}

double coeff_of_variation(std::span<const double> data) {
  if (data.size() < 2) return 0.0;
  RunningStats rs;
  for (double x : data) rs.add(x);
  return rs.mean() == 0.0 ? 0.0 : rs.stddev() / rs.mean();
}

}  // namespace arcs::common
