#include "common/rng.hpp"

#include <cmath>

namespace arcs::common {

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  // Box–Muller; u1 in (0,1] so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

}  // namespace arcs::common
