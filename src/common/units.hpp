// Physical-unit conventions used across the simulator and runtime.
//
// The libraries keep quantities as plain doubles for arithmetic speed but
// every API names its unit via these aliases. Conversion helpers make the
// handful of cross-unit spots (cycles <-> seconds, J <-> RAPL raw counts)
// explicit and auditable.
#pragma once

#include <cstdint>

namespace arcs::common {

using Seconds = double;   ///< wall/virtual time
using Joules = double;    ///< energy
using Watts = double;     ///< power
using Hertz = double;     ///< frequency (cycles per second)
using Bytes = double;     ///< data volume (double: used in capacity ratios)
using Cycles = double;    ///< CPU core cycles (fractional allowed in models)

inline constexpr Hertz kGHz = 1e9;
inline constexpr Hertz kMHz = 1e6;
inline constexpr Seconds kMilli = 1e-3;
inline constexpr Seconds kMicro = 1e-6;
inline constexpr Seconds kNano = 1e-9;
inline constexpr Bytes kKiB = 1024.0;
inline constexpr Bytes kMiB = 1024.0 * 1024.0;

/// Time taken by `c` core cycles at frequency `f`.
constexpr Seconds cycles_to_seconds(Cycles c, Hertz f) { return c / f; }

/// Cycles elapsed in `s` seconds at frequency `f`.
constexpr Cycles seconds_to_cycles(Seconds s, Hertz f) { return s * f; }

}  // namespace arcs::common
