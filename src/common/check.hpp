// Lightweight contract checking for the ARCS libraries.
//
// ARCS_CHECK is always on (cheap predicates guarding API misuse);
// ARCS_ASSERT compiles out in NDEBUG builds (hot-path invariants).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace arcs::common {

/// Thrown when an ARCS_CHECK precondition is violated.
class ContractError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void contract_failure(const char* expr, const char* file,
                                          int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": contract violated: (" << expr << ')';
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}

}  // namespace arcs::common

#define ARCS_CHECK(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::arcs::common::contract_failure(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define ARCS_CHECK_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr))                                                          \
      ::arcs::common::contract_failure(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define ARCS_ASSERT(expr) ((void)0)
#else
#define ARCS_ASSERT(expr) ARCS_CHECK(expr)
#endif
