#include "common/log.hpp"

#include <atomic>
#include <iostream>

#include "analysis/sync.hpp"

namespace arcs::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO ";
    case LogLevel::Warn:
      return "WARN ";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  // Experiment-pool workers log concurrently; serialize so lines never
  // interleave mid-message. Highest rank: any subsystem may log while
  // holding its own locks, never the reverse.
  static analysis::Mutex mu{"common/log",
                            analysis::sync::rank::kCommonLog};
  const std::lock_guard<analysis::Mutex> lock(mu);
  std::cerr << "[arcs " << level_tag(level) << "] " << message << '\n';
}

}  // namespace arcs::common
