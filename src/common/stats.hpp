// Streaming and batch statistics used by profiles and experiment harnesses.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace arcs::common {

/// Welford online mean/variance accumulator with min/max tracking.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const {
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const {
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// p-th percentile (0..100) by linear interpolation; data need not be sorted.
double percentile(std::span<const double> data, double p);

/// Arithmetic mean of a span (0 for empty).
double mean(std::span<const double> data);

/// Geometric mean (requires strictly positive values; 0 for empty).
double geomean(std::span<const double> data);

/// Coefficient of variation (stddev/mean); 0 if mean is 0 or <2 samples.
double coeff_of_variation(std::span<const double> data);

}  // namespace arcs::common
