#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace arcs::common {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; emit null (goldens never contain these).
    out += "null";
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*g",
                std::numeric_limits<double>::max_digits10, v);
  out += buf;
}

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& message) {
    if (error.empty())
      error = message + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Json(std::move(s));
      return true;
    }
    if (c == 't' || c == 'f') return parse_keyword(out);
    if (c == 'n') return parse_keyword(out);
    return parse_number(out);
  }

  bool parse_keyword(Json& out) {
    auto match = [&](const char* kw) {
      const std::size_t n = std::char_traits<char>::length(kw);
      if (text.compare(pos, n, kw) != 0) return false;
      pos += n;
      return true;
    };
    if (match("true")) {
      out = Json(true);
      return true;
    }
    if (match("false")) {
      out = Json(false);
      return true;
    }
    if (match("null")) {
      out = Json();
      return true;
    }
    return fail("invalid token");
  }

  bool parse_number(Json& out) {
    const char* start = text.c_str() + pos;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return fail("invalid number");
    pos += static_cast<std::size_t>(end - start);
    out = Json(v);
    return true;
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"')
      return fail("expected string");
    ++pos;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return fail("truncated escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("invalid \\u escape");
          }
          // UTF-8 encode (no surrogate-pair handling; goldens are ASCII).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(Json& out) {
    if (!consume('[')) return false;
    out = Json::array();
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      Json item;
      if (!parse_value(item)) return false;
      out.push_back(std::move(item));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_object(Json& out) {
    if (!consume('{')) return false;
    out = Json::object();
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      Json value;
      if (!parse_value(value)) return false;
      out.set(key, std::move(value));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume('}');
    }
  }
};

}  // namespace

void Json::set(const std::string& key, Json value) {
  kind_ = Kind::Object;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

void Json::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Number:
      append_number(out, num_);
      break;
    case Kind::String:
      append_escaped(out, str_);
      break;
    case Kind::Array: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += pretty ? "," : ", ";
        newline(depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Kind::Object: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += pretty ? "," : ", ";
        newline(depth + 1);
        append_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.write(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

Json Json::parse(const std::string& text, std::string* error) {
  Parser p{text, 0, {}};
  Json out;
  if (!p.parse_value(out)) {
    if (error != nullptr) *error = p.error;
    return Json();
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr)
      *error = "trailing garbage at offset " + std::to_string(p.pos);
    return Json();
  }
  if (error != nullptr) error->clear();
  return out;
}

}  // namespace arcs::common
