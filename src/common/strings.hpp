// Small string utilities (no dependency on any third-party library).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace arcs::common {

/// Split on a delimiter; empty fields preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// printf-style double formatting with fixed decimals.
std::string format_fixed(double value, int decimals);

/// Human-readable SI formatting for large values, e.g. 2.4e9 -> "2.40G".
std::string format_si(double value, int decimals = 2);

}  // namespace arcs::common
