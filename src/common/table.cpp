#include "common/table.hpp"

#include <algorithm>
#include <ostream>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace arcs::common {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ARCS_CHECK(!headers_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(std::string value) {
  ARCS_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  ARCS_CHECK_MSG(rows_.back().size() < headers_.size(),
                 "row has more cells than headers");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int decimals) {
  return cell(format_fixed(value, decimals));
}

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << (c == 0 ? "" : "  ") << v
         << std::string(widths[c] - v.size(), ' ');
    }
    os << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << (c == 0 ? "" : ",") << quote(cells[c]);
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  table.print(os);
  return os;
}

}  // namespace arcs::common
