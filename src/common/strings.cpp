#include "common/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace arcs::common {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_si(double value, int decimals) {
  static constexpr const char* kSuffix[] = {"", "k", "M", "G", "T", "P"};
  int idx = 0;
  double v = value;
  while (std::fabs(v) >= 1000.0 && idx < 5) {
    v /= 1000.0;
    ++idx;
  }
  return format_fixed(v, decimals) + kSuffix[idx];
}

}  // namespace arcs::common
