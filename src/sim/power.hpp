// Package power model and power-cap governor.
//
// Package power is modeled as
//
//     P(f, a) = P_uncore + a * (P_core_static + P_core_dyn_ref * (f/f_ref)^alpha)
//
// where `a` is the number of active cores. The exponent alpha > 1 folds the
// voltage/frequency relationship of DVFS into a single term (dynamic power
// ~ C V^2 f with V roughly affine in f gives alpha in [2, 3]).
//
// The governor mirrors RAPL's behavior: given a package power limit it picks
// the highest P-state whose worst-case package power with the current number
// of active cores stays under the limit; if even the lowest P-state exceeds
// the limit it duty-cycles (clock gating), reducing effective throughput
// proportionally. This is the mechanism whose performance consequences ARCS
// navigates: fewer active cores leave headroom for a higher frequency at the
// same cap.
#pragma once

#include "common/units.hpp"
#include "sim/frequency.hpp"

namespace arcs::sim {

struct PowerModel {
  common::Watts uncore = 18.0;       ///< always-on package power
  common::Watts core_static = 1.2;   ///< per active core leakage
  common::Watts core_dyn_ref = 4.2;  ///< per-core dynamic power at f_ref
  double alpha = 2.2;                ///< dynamic power exponent
  common::Hertz f_ref = 2.4e9;
  /// Fraction of dynamic power burned by a spin-waiting thread.
  double spin_fraction = 0.30;
  /// Per-core power in a sleep state (C1/C3), replacing static+dynamic.
  common::Watts core_sleep = 0.25;

  /// Per-core dynamic power at frequency f.
  common::Watts core_dynamic(common::Hertz f) const;

  /// Full-package power with `active_cores` busy cores at frequency f.
  common::Watts package_power(common::Hertz f, int active_cores) const;

  /// Power contribution of one busy core (static + dynamic).
  common::Watts core_busy(common::Hertz f) const;

  /// Power of a core whose threads are all spin-waiting.
  common::Watts core_spin(common::Hertz f) const;
};

/// Chooses the operating point honoring a power cap.
class PowerGovernor {
 public:
  PowerGovernor(const PowerModel& power, const FrequencyModel& freq)
      : power_(power), freq_(freq) {}

  /// Highest-throughput operating point with `active_cores` busy cores whose
  /// package power does not exceed `cap`. With cap >= uncapped power this is
  /// simply (f_max, duty 1).
  OperatingPoint operating_point(common::Watts cap, int active_cores) const;

  /// Package power at the chosen point (accounting for duty cycling).
  common::Watts power_at(const OperatingPoint& op, int active_cores) const;

 private:
  PowerModel power_;
  FrequencyModel freq_;
};

}  // namespace arcs::sim
