#include "sim/frequency.hpp"

#include <cmath>

#include "common/check.hpp"

namespace arcs::sim {

std::vector<common::Hertz> FrequencyModel::pstates() const {
  ARCS_CHECK(f_min > 0 && f_max >= f_min && step > 0);
  std::vector<common::Hertz> out;
  for (common::Hertz f = f_min; f <= f_max + 0.5 * step; f += step)
    out.push_back(std::min(f, f_max));
  if (out.empty() || out.back() < f_max) out.push_back(f_max);
  return out;
}

common::Hertz FrequencyModel::quantize(common::Hertz f) const {
  ARCS_CHECK(f_min > 0 && f_max >= f_min && step > 0);
  if (f <= f_min) return f_min;
  if (f >= f_max) return f_max;
  const double steps = std::floor((f - f_min) / step);
  return f_min + steps * step;
}

int FrequencyModel::num_pstates() const {
  return static_cast<int>(pstates().size());
}

}  // namespace arcs::sim
