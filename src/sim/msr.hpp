// MSR-level RAPL interface — the register view libmsr works against.
//
// The paper measures energy and programs caps through "libmsr, a library
// that facilitates access to MSRs via RAPL interface" [13]. This module
// exposes the machine model through the same register file a libmsr-style
// client sees, with the Intel SDM bit layouts:
//
//   MSR_RAPL_POWER_UNIT (0x606)
//     bits  3:0  power unit   = 1/2^PU watts
//     bits 12:8  energy unit  = 1/2^ESU joules
//     bits 19:16 time unit    = 1/2^TU seconds
//   MSR_PKG_POWER_LIMIT (0x610)
//     bits 14:0  limit #1 in power units, bit 15 enable, bit 16 clamp,
//     bits 23:17 time window #1 as (1 + F/4) * 2^Y  time units
//     (Y = bits 21:17, F = bits 23:22)
//   MSR_PKG_ENERGY_STATUS (0x611)
//     bits 31:0  wrapping energy counter in energy units (read-only)
//   MSR_PKG_POWER_INFO (0x614)
//     bits 14:0  thermal spec power (TDP) in power units (read-only)
//
// Reads and writes translate to Machine operations; unknown registers,
// writes to read-only registers, and access on machines without the
// corresponding privilege raise MsrError / CapabilityError exactly where
// a real msr-safe setup would fail.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/machine.hpp"

namespace arcs::sim {

inline constexpr std::uint32_t kMsrRaplPowerUnit = 0x606;
inline constexpr std::uint32_t kMsrPkgPowerLimit = 0x610;
inline constexpr std::uint32_t kMsrPkgEnergyStatus = 0x611;
inline constexpr std::uint32_t kMsrPkgPowerInfo = 0x614;

/// Raised on malformed MSR access (unknown address, read-only write).
class MsrError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Fixed unit exponents advertised in MSR_RAPL_POWER_UNIT. The energy
/// unit 2^-16 J = 15.26 uJ matches the RaplCounter's default quantum.
struct MsrUnits {
  unsigned power_exp = 3;    ///< 1/8 W
  unsigned energy_exp = 16;  ///< ~15.26 uJ
  unsigned time_exp = 10;    ///< ~0.98 ms

  double power_unit() const { return 1.0 / (1u << power_exp); }
  double energy_unit() const { return 1.0 / (1u << energy_exp); }
  double time_unit() const { return 1.0 / (1u << time_exp); }
};

/// The per-package MSR device (what /dev/cpu/N/msr + msr-safe expose).
class MsrDevice {
 public:
  /// The machine must outlive the device.
  explicit MsrDevice(Machine& machine);

  /// Reads a supported register. Energy reads on machines without
  /// counter access throw CapabilityError (as the paper hit on Minotaur).
  std::uint64_t read(std::uint32_t msr) const;

  /// Writes a register; only MSR_PKG_POWER_LIMIT is writable, and only
  /// on power-cappable machines.
  void write(std::uint32_t msr, std::uint64_t value);

  const MsrUnits& units() const { return units_; }

  // --- libmsr-style conveniences over the raw registers ---

  /// Programs limit #1: watts + time window, enabled and clamped.
  void set_package_power_limit(double watts, double window_seconds);

  /// Disables the limit (machine returns to TDP).
  void disable_package_power_limit();

  /// Decodes the currently programmed limit (0 when disabled).
  double package_power_limit_watts() const;

  /// Energy in joules as a RAPL client computes it — two raw reads with
  /// wraparound-safe differencing belong to the caller; this is just the
  /// scaled current counter.
  double package_energy_joules() const;

  /// TDP from MSR_PKG_POWER_INFO.
  double thermal_spec_power_watts() const;

 private:
  std::uint64_t encode_power_limit() const;

  Machine& machine_;
  MsrUnits units_;
  // Mirror of the programmed limit register (hardware keeps the last
  // written value; the machine only tracks the resulting cap).
  std::uint64_t power_limit_reg_ = 0;
};

/// Encodes/decodes the SDM time-window field (Y, F) <-> seconds.
std::uint32_t encode_time_window(double seconds, const MsrUnits& units);
double decode_time_window(std::uint32_t field, const MsrUnits& units);

}  // namespace arcs::sim
