#include "sim/rapl.hpp"

#include <cmath>

#include "common/check.hpp"

namespace arcs::sim {

RaplCounter::RaplCounter(common::Joules energy_unit,
                         common::Seconds update_period)
    : unit_(energy_unit), period_(update_period) {
  ARCS_CHECK(unit_ > 0);
  ARCS_CHECK(period_ > 0);
}

void RaplCounter::deposit(common::Joules joules, common::Seconds now) {
  ARCS_CHECK(joules >= 0);
  ARCS_CHECK_MSG(now + 1e-12 >= last_refresh_,
                 "RAPL deposits must be monotone in time");
  exact_ += joules;
  pending_ += joules;
  // Publish at refresh boundaries crossed by `now`.
  const double boundary = std::floor(now / period_) * period_;
  if (boundary > last_refresh_ || visible_counts_ == 0) {
    visible_counts_ += static_cast<std::uint64_t>(pending_ / unit_);
    pending_ -= std::floor(pending_ / unit_) * unit_;
    last_refresh_ = boundary;
  }
}

std::uint32_t RaplCounter::read_raw(common::Seconds /*now*/) const {
  return static_cast<std::uint32_t>(visible_counts_ & 0xffffffffULL);
}

common::Joules RaplCounter::joules_between(std::uint32_t before,
                                           std::uint32_t after) const {
  // Canonical wraparound handling: unsigned subtraction modulo 2^32.
  const std::uint32_t delta = after - before;
  return static_cast<common::Joules>(delta) * unit_;
}

RaplPowerLimit::RaplPowerLimit(common::Watts initial_limit,
                               common::Seconds settle_time)
    : target_(initial_limit), previous_(initial_limit), settle_(settle_time) {
  ARCS_CHECK(settle_ >= 0);
}

void RaplPowerLimit::program(common::Watts limit, common::Seconds now) {
  previous_ = effective(now);
  target_ = limit;
  programmed_at_ = now;
}

common::Watts RaplPowerLimit::effective(common::Seconds now) const {
  if (settle_ <= 0 || now >= programmed_at_ + settle_) return target_;
  if (now <= programmed_at_) return previous_;
  const double frac = (now - programmed_at_) / settle_;
  return previous_ + (target_ - previous_) * frac;
}

}  // namespace arcs::sim
