#include "sim/topology.hpp"

#include <algorithm>
#include <cmath>

namespace arcs::sim {

Placement place_threads(const CpuTopology& topo, int nthreads,
                        PlacementPolicy policy) {
  ARCS_CHECK(nthreads >= 1);
  ARCS_CHECK(topo.sockets >= 1 && topo.cores_per_socket >= 1 &&
             topo.smt_per_core >= 1);

  Placement p;
  p.nthreads = nthreads;

  const int cores = topo.total_cores();
  const int hw = topo.hw_threads();
  p.oversubscription =
      nthreads <= hw ? 1.0
                     : static_cast<double>(nthreads) / static_cast<double>(hw);

  if (policy == PlacementPolicy::Spread) {
    p.active_cores = std::min(nthreads, cores);
    p.active_sockets = std::min(nthreads, topo.sockets);
    // Threads round-robin over cores, so per-core load differs by at
    // most one until hardware threads run out.
    p.max_threads_per_core =
        (nthreads + cores - 1) / cores;  // ceil over all cores when > cores
    if (nthreads <= cores) p.max_threads_per_core = 1;
    p.avg_threads_per_core =
        static_cast<double>(nthreads) / static_cast<double>(p.active_cores);
    // Round-robin over sockets: busiest socket holds ceil share.
    p.threads_on_busiest_socket =
        (nthreads + topo.sockets - 1) / topo.sockets;
    return p;
  }

  // Close: pack SMT siblings of one core, then the next core of the same
  // socket, then the next socket.
  const int smt = topo.smt_per_core;
  p.active_cores =
      std::min((nthreads + smt - 1) / smt, cores);
  p.active_sockets = std::min(
      (p.active_cores + topo.cores_per_socket - 1) / topo.cores_per_socket,
      topo.sockets);
  p.max_threads_per_core = std::min(nthreads, smt);
  if (nthreads > hw)
    p.max_threads_per_core =
        (nthreads + cores - 1) / cores;  // oversubscribed: all cores full
  // Counts software threads (oversubscribed ones timeshare the core) so
  // per-thread resource shares always sum back to whole cores.
  p.avg_threads_per_core = static_cast<double>(nthreads) /
                           static_cast<double>(p.active_cores);
  p.threads_on_busiest_socket =
      std::min(nthreads, topo.cores_per_socket * smt);
  return p;
}

}  // namespace arcs::sim
