// CPU topology: sockets x cores x SMT ways, and the placement of an OpenMP
// thread team onto hardware threads.
//
// Two placement policies, mirroring OMP_PROC_BIND:
//  * Spread (the default of production runtimes): threads fill distinct
//    cores (round-robin over sockets) before doubling up on SMT siblings;
//  * Close: threads pack SMT siblings and cores of one socket first —
//    fewer active cores, which buys frequency headroom under a power cap
//    at the price of SMT sharing.
#pragma once

#include <vector>

#include "common/check.hpp"

namespace arcs::sim {

enum class PlacementPolicy { Spread, Close };

struct CpuTopology {
  int sockets = 1;
  int cores_per_socket = 1;
  int smt_per_core = 1;

  int total_cores() const { return sockets * cores_per_socket; }
  int hw_threads() const { return total_cores() * smt_per_core; }
};

/// Result of placing a team of software threads onto the topology.
struct Placement {
  int nthreads = 0;        ///< team size requested
  int active_cores = 0;    ///< cores with at least one thread
  int active_sockets = 0;  ///< sockets with at least one active core
  int max_threads_per_core = 0;
  /// Threads resident on each active core (uniform up to a remainder).
  double avg_threads_per_core = 0.0;
  /// Software threads per hardware thread (>1 means oversubscription).
  double oversubscription = 1.0;
  /// Threads assigned to the most loaded socket.
  int threads_on_busiest_socket = 0;
};

/// Computes the placement of `nthreads` threads. nthreads >= 1.
Placement place_threads(const CpuTopology& topo, int nthreads,
                        PlacementPolicy policy = PlacementPolicy::Spread);

}  // namespace arcs::sim
