// Machine presets mirroring the paper's two testbeds (§IV.A).
#pragma once

#include "sim/machine.hpp"

namespace arcs::sim {

/// Crill (University of Houston): dual-socket 2.4 GHz Intel Xeon E5
/// (Sandy Bridge), 16 cores / 32 hyper-threads, TDP 115 W, RAPL power
/// capping and energy counters available.
MachineSpec crill();

/// Minotaur (University of Oregon): IBM S822LC, two 10-core POWER8 at
/// 2.92 GHz, SMT8 (160 hardware threads), 256 GB. No power-capping
/// privilege and no energy counter access (as in the paper) — experiments
/// on it are execution-time only at the default power level.
MachineSpec minotaur();

/// A hypothetical newer partner node for heterogeneous-job experiments
/// (paper §VII future work): dual-socket 12-core Haswell-class at
/// 2.6 GHz, wider but lower-clocked under caps than Crill.
MachineSpec haswell();

/// A small 4-core machine for fast unit tests.
MachineSpec testbox();

}  // namespace arcs::sim
