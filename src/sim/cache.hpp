// Three-level cache hierarchy and a capacity/locality miss-rate model.
//
// The model answers one question for the loop runtime: given a region's
// intrinsic memory behavior and a runtime configuration (thread placement,
// chunk size, schedule contiguity), what are the L1/L2/L3 miss ratios and
// the resulting memory stall time per iteration?
//
// It captures the four effects the ARCS paper's analysis revolves around:
//
//  1. *Small chunks lose reuse.* A line is reused by up to `reuse_window`
//     consecutive iterations; a thread executing chunks of c iterations
//     only captures a c/(c + R) share of that reuse, so small chunks raise
//     miss ratios (strongest at L1).
//  2. *Non-contiguous schedules disrupt prefetch.* dynamic/guided hand out
//     scattered chunks; hardware prefetchers lose their stride, adding a
//     penalty that decays with chunk size.
//  3. *Capacity pressure.* Private L1/L2 are split among SMT siblings;
//     shared L3 is split among every thread on the socket. When the
//     aggregate resident set outgrows a level, its miss ratio rises as
//     (footprint/capacity)^gamma. This is what makes "fewer threads" win
//     L3 behavior for large-footprint regions (the paper's up-to-90% L3
//     improvements on SP).
//  4. *Bandwidth saturation.* DRAM traffic from many threads on one socket
//     contends; the per-miss latency inflates once demanded bandwidth
//     exceeds the socket's.
//
// All shaping parameters live in `MemoryBehavior` so workload models
// (kernels/) can be calibrated without touching the simulator.
#pragma once

#include "common/units.hpp"
#include "sim/topology.hpp"

namespace arcs::sim {

struct CacheLevelSpec {
  common::Bytes capacity = 0;
  double latency_ns = 0;        ///< access latency of *this* level
  bool shared_per_socket = false;
};

struct CacheHierarchy {
  CacheLevelSpec l1{32 * 1024.0, 1.3, false};
  CacheLevelSpec l2{256 * 1024.0, 3.8, false};
  CacheLevelSpec l3{20 * 1024.0 * 1024.0, 14.0, true};
  double dram_latency_ns = 78.0;
  double dram_bandwidth_gbs = 51.2;  ///< per socket, GB/s
};

/// Intrinsic memory behavior of one parallel region (config-independent).
struct MemoryBehavior {
  /// Unique bytes resident per iteration (drives capacity pressure).
  common::Bytes bytes_per_iter = 256.0;
  /// Cache-access volume per iteration (drives stall time); >= unique
  /// bytes when the kernel re-reads its working set (solver sweeps).
  /// 0 = same as bytes_per_iter.
  common::Bytes access_bytes_per_iter = 0.0;
  /// Number of consecutive iterations that reuse a line (>=1).
  double reuse_window = 16.0;
  /// Access-stride inflation: 1 = unit stride, k = only 1/k of each line
  /// useful (long-stride stencils like BT's rhsz have k >> 1).
  double stride_factor = 1.0;
  /// Miss fractions per *access* under ideal locality (absolute, not
  /// conditional): base_miss_l1 >= base_miss_l2 >= base_miss_l3. The
  /// model clamps the chain monotone after applying per-level factors.
  double base_miss_l1 = 0.05;
  double base_miss_l2 = 0.02;
  double base_miss_l3 = 0.008;
  /// Memory-level parallelism: outstanding DRAM misses a thread overlaps;
  /// effective DRAM latency is dram_latency_ns / mlp.
  double mlp = 4.0;
  /// Sensitivity of each level to lost reuse from small chunks.
  double reuse_sens_l1 = 1.5;
  double reuse_sens_l2 = 1.0;
  double reuse_sens_l3 = 0.5;
  /// Sensitivity to non-contiguous (dynamic/guided) chunk pickup.
  double prefetch_sens = 0.4;
  /// Capacity-overflow exponents.
  double gamma_private = 0.7;
  double gamma_shared = 1.0;
};

/// Configuration-dependent inputs to the model.
struct CacheConfig {
  Placement placement;      ///< thread placement on the machine
  double chunk_iters = 1;   ///< iterations per scheduled chunk (>=1)
  bool contiguous = true;   ///< static schedule => contiguous pickup
};

/// Model outputs. Miss rates are absolute fractions of accesses that miss
/// at each level (what PAPI-style counters normalized by accesses report).
struct CacheOutcome {
  double miss_l1 = 0;  ///< fraction of accesses missing L1
  double miss_l2 = 0;  ///< fraction of accesses missing L2 (<= miss_l1)
  double miss_l3 = 0;  ///< fraction of accesses missing L3 (<= miss_l2)
  double lines_per_iter = 0;
  double dram_lines_per_iter = 0;
  /// Latency-path memory stall per iteration (misses overlapped by MLP).
  double stall_ns_per_iter = 0;
  /// Roofline bandwidth floor: the iteration cannot complete faster than
  /// its share of the socket's DRAM pins allows, i.e.
  /// dram_bytes * threads_on_socket / socket_bandwidth. The runtime takes
  /// max(compute + stall, bw_floor) per iteration.
  double bw_floor_ns_per_iter = 0;
};

class CacheModel {
 public:
  explicit CacheModel(const CacheHierarchy& hierarchy)
      : hier_(hierarchy) {}

  /// Evaluates miss ratios and per-iteration stall for one region
  /// execution. The DRAM term is the max of a latency bound (misses /
  /// MLP) and a bandwidth bound (the thread's share of socket bandwidth),
  /// so saturated-bandwidth kernels lose nothing by shedding threads —
  /// the regime behind the paper's low-thread-count optima.
  CacheOutcome evaluate(const MemoryBehavior& mem,
                        const CacheConfig& cfg) const;

  const CacheHierarchy& hierarchy() const { return hier_; }

 private:
  CacheHierarchy hier_;
};

}  // namespace arcs::sim
