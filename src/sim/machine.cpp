#include "sim/machine.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace arcs::sim {

double MachineSpec::smt_per_thread_throughput(double threads_per_core) const {
  ARCS_CHECK(!smt_throughput.empty());
  ARCS_CHECK(threads_per_core >= 1.0);
  // Interpolate the combined-throughput table, then divide by thread count.
  const double k = threads_per_core;
  const auto n = smt_throughput.size();
  double combined = 0.0;
  if (k >= static_cast<double>(n)) {
    combined = smt_throughput.back();
  } else {
    const auto lo = static_cast<std::size_t>(k) - 1;
    const auto hi = std::min(lo + 1, n - 1);
    const double frac = k - std::floor(k);
    combined = smt_throughput[lo] * (1.0 - frac) + smt_throughput[hi] * frac;
  }
  return combined / k;
}

Machine::Machine(MachineSpec spec, std::uint64_t noise_seed)
    : spec_(std::move(spec)),
      governor_(spec_.power, spec_.frequency),
      cache_model_(spec_.caches),
      limit_(spec_.tdp),
      counter_(),
      noise_(noise_seed) {
  ARCS_CHECK(spec_.tdp > 0);
  ARCS_CHECK(spec_.os_jitter_sigma >= 0);
}

double Machine::next_jitter() {
  if (spec_.os_jitter_sigma <= 0) return 1.0;
  // One-sided: |N(0, sigma)| as a slowdown, so the noiseless time is the
  // infimum — which is why min-of-repetitions de-noises a shared machine.
  return 1.0 + std::abs(noise_.normal(0.0, spec_.os_jitter_sigma));
}

void Machine::set_power_cap(common::Watts cap) {
  if (!spec_.power_cappable)
    throw CapabilityError(spec_.name +
                          ": no power-capping privilege on this machine");
  ARCS_CHECK_MSG(cap > 0, "power cap must be positive");
  limit_.program(std::min(cap, spec_.tdp), clock_);
}

void Machine::clear_power_cap() { limit_.program(spec_.tdp, clock_); }

common::Watts Machine::power_cap() const { return limit_.effective(clock_); }

common::Watts Machine::programmed_power_cap() const {
  return limit_.programmed();
}

OperatingPoint Machine::operating_point(int active_cores,
                                        common::Hertz user_freq_cap) const {
  // Inactive cores still draw sleep power; reserve it out of the budget
  // so the package as a whole never exceeds the programmed limit — the
  // strict enforcement RAPL provides (and that the paper's §VI criticizes
  // softer schemes for lacking).
  const double idle_cores = static_cast<double>(
      spec_.topology.total_cores() - std::min(active_cores,
                                              spec_.topology.total_cores()));
  const common::Watts budget =
      power_cap() - idle_cores * spec_.power.core_sleep;
  OperatingPoint op = governor_.operating_point(budget, active_cores);
  if (user_freq_cap > 0 && user_freq_cap < op.frequency) {
    op.frequency = spec_.frequency.quantize(user_freq_cap);
    op.duty = 1.0;  // below the governor's point: no gating needed
  }
  return op;
}

void Machine::advance(common::Seconds dt, common::Watts power) {
  ARCS_CHECK(dt >= 0);
  ARCS_CHECK(power >= 0);
  clock_ += dt;
  last_power_ = power;
  counter_.deposit(power * dt, clock_);
}

void Machine::advance_idle(common::Seconds dt) {
  advance(dt, spec_.power.uncore);
}

std::uint32_t Machine::read_energy_raw() const {
  if (!spec_.energy_counters)
    throw CapabilityError(spec_.name +
                          ": energy counters are not accessible");
  return counter_.read_raw(clock_);
}

const RaplCounter& Machine::rapl_counter() const {
  if (!spec_.energy_counters)
    throw CapabilityError(spec_.name +
                          ": energy counters are not accessible");
  return counter_;
}

void Machine::deposit_dram_traffic(double bytes) {
  ARCS_CHECK(bytes >= 0);
  dram_access_energy_ += bytes / 1e9 * spec_.dram_energy_per_gb;
}

common::Joules Machine::dram_energy() const {
  return spec_.dram_background * clock_ + dram_access_energy_;
}

void Machine::reset() {
  counter_ = RaplCounter();
  clock_ = 0.0;
  limit_ = RaplPowerLimit(limit_.programmed());
  dram_access_energy_ = 0.0;
}

}  // namespace arcs::sim
