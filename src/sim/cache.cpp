#include "sim/cache.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace arcs::sim {

namespace {

constexpr double kLineBytes = 64.0;
/// Chunk scale below which scattered pickup still hurts prefetching.
constexpr double kPrefetchChunkScale = 16.0;
/// Past this multiplier a level is effectively thrashing; growing the
/// ratio further cannot make misses worse (they clamp at ~1 anyway).
constexpr double kMaxCapacityFactor = 6.0;

double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

/// Capacity-overflow multiplier: 1 while the resident set fits, then grows
/// as (ratio)^gamma, saturating at kMaxCapacityFactor.
double capacity_factor(double footprint, double capacity, double gamma) {
  if (capacity <= 0) return 1.0;
  const double ratio = footprint / capacity;
  if (ratio <= 1.0) return 1.0;
  return std::min(kMaxCapacityFactor, std::pow(ratio, gamma));
}

}  // namespace

CacheOutcome CacheModel::evaluate(const MemoryBehavior& mem,
                                  const CacheConfig& cfg) const {
  ARCS_CHECK(cfg.chunk_iters >= 1.0);
  ARCS_CHECK(mem.reuse_window >= 1.0);
  ARCS_CHECK(mem.stride_factor >= 1.0);
  ARCS_CHECK(mem.mlp >= 1.0);

  CacheOutcome out;
  const double c = cfg.chunk_iters;
  const double reuse_loss = mem.reuse_window / (mem.reuse_window + c);
  const double prefetch_loss =
      cfg.contiguous
          ? 0.0
          : mem.prefetch_sens * kPrefetchChunkScale /
                (kPrefetchChunkScale + c);

  // Resident set of one thread: the data of the iterations whose reuse it
  // is still carrying, inflated by stride waste.
  const double window_iters = std::min(c, mem.reuse_window);
  const double ws_thread =
      mem.bytes_per_iter * mem.stride_factor * std::max(window_iters, 1.0);

  const Placement& pl = cfg.placement;
  const double threads_per_core = std::max(pl.avg_threads_per_core, 1.0);
  const double threads_per_socket =
      std::max(static_cast<double>(pl.threads_on_busiest_socket), 1.0);

  // Per-level miss fractions (absolute, per access). Locality loss from
  // small/scattered chunks is strongest at L1, weaker at L2, and does not
  // touch the DRAM-bound fraction at all — short-range reuse misses hit
  // in the next level down, they don't create new memory traffic.
  const double f1 = capacity_factor(ws_thread * threads_per_core,
                                    hier_.l1.capacity, mem.gamma_private);
  const double p1 = clamp01(
      mem.base_miss_l1 * f1 *
      (1.0 + mem.reuse_sens_l1 * reuse_loss + prefetch_loss));

  const double f2 = capacity_factor(ws_thread * threads_per_core,
                                    hier_.l2.capacity, mem.gamma_private);
  const double p2_raw = clamp01(
      mem.base_miss_l2 * f2 *
      (1.0 + mem.reuse_sens_l2 * reuse_loss + 0.5 * prefetch_loss));

  const double ws_socket = ws_thread * threads_per_socket;
  const double f3 = capacity_factor(ws_socket, hier_.l3.capacity,
                                    mem.gamma_shared);
  const double p3_raw = clamp01(
      mem.base_miss_l3 * f3 * (1.0 + mem.reuse_sens_l3 * reuse_loss));

  // The chain is monotone: you cannot miss L2 more often than L1.
  out.miss_l1 = p1;
  out.miss_l2 = std::min(p2_raw, out.miss_l1);
  out.miss_l3 = std::min(p3_raw, out.miss_l2);

  // --- traffic and stall ---
  const double access_bytes = mem.access_bytes_per_iter > 0.0
                                  ? mem.access_bytes_per_iter
                                  : mem.bytes_per_iter;
  out.lines_per_iter = access_bytes / kLineBytes * mem.stride_factor;
  const double l1_misses = out.lines_per_iter * out.miss_l1;
  const double l2_misses = out.lines_per_iter * out.miss_l2;
  const double l3_misses = out.lines_per_iter * out.miss_l3;
  out.dram_lines_per_iter = l3_misses;

  // Latency path: misses pay the next level's latency; out-of-order
  // execution overlaps `mlp` outstanding misses across the whole chain.
  out.stall_ns_per_iter = (l1_misses * hier_.l2.latency_ns +
                           l2_misses * hier_.l3.latency_ns +
                           l3_misses * hier_.dram_latency_ns) /
                          mem.mlp;

  // Roofline floor: with every thread on the socket streaming the same
  // kernel, each gets a 1/threads share of the pins.
  out.bw_floor_ns_per_iter =
      l3_misses * kLineBytes * threads_per_socket /
      std::max(hier_.dram_bandwidth_gbs, 1e-9);  // bytes/(GB/s) = ns
  return out;
}

}  // namespace arcs::sim
