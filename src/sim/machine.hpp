// Machine specification and live machine state.
//
// `MachineSpec` is the static description of a node (topology, frequency
// ladder, power model, caches, runtime cost constants, SMT scaling). Two
// presets mirror the paper's testbeds: `crill()` (dual-socket Intel Sandy
// Bridge Xeon E5, 16 cores / 32 hyper-threads, power-cappable via RAPL)
// and `minotaur()` (dual-socket IBM POWER8, 20 cores / 160 SMT threads,
// no capping privilege and no energy counters, as in the paper).
//
// `Machine` is the mutable node: current power cap (through the emulated
// RAPL limit register), virtual wall clock, and the package energy counter.
// The loop runtime advances it in segments.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/cache.hpp"
#include "sim/frequency.hpp"
#include "sim/power.hpp"
#include "sim/rapl.hpp"
#include "sim/topology.hpp"

namespace arcs::sim {

struct MachineSpec {
  std::string name;
  CpuTopology topology;
  FrequencyModel frequency;
  PowerModel power;
  CacheHierarchy caches;

  /// Combined throughput of one core running k SMT threads, indexed by
  /// k-1. E.g. {1.0, 1.25}: two hyper-threads deliver 1.25x one thread.
  /// Threads beyond the table use its last entry.
  std::vector<double> smt_throughput{1.0};

  /// Cost of omp_set_num_threads()+omp_set_schedule() per region call
  /// (team resize / ICV propagation). Paper: ~8 ms on Crill.
  common::Seconds config_change_cost = 8e-3;
  /// Fork/join cost of entering a parallel region, per thread in the team.
  common::Seconds fork_join_per_thread = 1.5e-6;
  /// Cost of one dynamic/guided chunk grab (atomic on the shared index).
  common::Seconds dispatch_cost = 120e-9;
  /// Extra per-grab contention cost multiplied by log2(team size).
  common::Seconds dispatch_contention = 40e-9;
  /// One-time loop setup (static partition computation).
  common::Seconds static_setup_cost = 0.8e-6;
  /// Context-switch cost per iteration batch when oversubscribed.
  common::Seconds oversubscription_switch = 6e-6;
  /// Spin->sleep threshold for waiting threads and sleep transition cost.
  common::Seconds sleep_threshold = 80e-6;
  common::Seconds sleep_transition = 12e-6;
  /// One level of a reduction combining tree (cache-line exchange).
  common::Seconds reduction_step_cost = 0.9e-6;

  common::Watts tdp = 115.0;
  bool power_cappable = true;
  bool energy_counters = true;

  /// OS/measurement jitter: per-region-execution multiplicative noise
  /// (lognormal sigma). 0 = fully deterministic. The paper repeats every
  /// experiment three times because of exactly this noise — higher on
  /// the shared Minotaur than on the dedicated Crill (§IV.D).
  double os_jitter_sigma = 0.0;

  /// DRAM power model (paper §VII extension: "account for memory power
  /// in addition to processor power"): background refresh/standby power
  /// plus an access-energy cost per byte moved to/from the DIMMs.
  common::Watts dram_background = 8.0;
  double dram_energy_per_gb = 0.5;  ///< J per GB of DRAM traffic

  int default_threads() const { return topology.hw_threads(); }

  /// Per-thread throughput multiplier with k threads per core (<=1).
  double smt_per_thread_throughput(double threads_per_core) const;
};

/// Thrown when a capability the paper lacked on a machine is exercised
/// (e.g. power capping on Minotaur).
class CapabilityError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Machine {
 public:
  /// `noise_seed` drives the OS-jitter stream (irrelevant when the spec's
  /// os_jitter_sigma is 0).
  explicit Machine(MachineSpec spec, std::uint64_t noise_seed = 1);

  const MachineSpec& spec() const { return spec_; }

  /// Programs the package power cap. Throws CapabilityError when the
  /// machine does not expose capping (Minotaur in the paper).
  void set_power_cap(common::Watts cap);

  /// Removes any cap (TDP-limited only).
  void clear_power_cap();

  common::Watts power_cap() const;

  /// The programmed (target) cap, independent of the settling window —
  /// what a client would read back from the limit register.
  common::Watts programmed_power_cap() const;

  /// Operating point the governor grants for `active_cores` busy cores at
  /// the current (settled) cap. A positive `user_freq_cap` (Hz) further
  /// clips the frequency — the DVFS request of the paper's §VII
  /// extension (never raises power, so the RAPL limit stays honored).
  OperatingPoint operating_point(int active_cores,
                                 common::Hertz user_freq_cap = 0) const;

  /// Advances the virtual clock by dt with the package drawing `power`.
  void advance(common::Seconds dt, common::Watts power);

  /// Advances the clock without attributing busy power (idle periods
  /// between regions still draw uncore power).
  void advance_idle(common::Seconds dt);

  common::Seconds now() const { return clock_; }

  /// Package power drawn during the most recent advance() segment — what
  /// a power meter sampling the node would have read.
  common::Watts last_power() const { return last_power_; }

  /// Draws the next region execution's jitter factor (>= ~1; slowdowns
  /// only — noise never makes work finish early). Returns exactly 1 when
  /// os_jitter_sigma is 0.
  double next_jitter();

  /// Ground-truth package energy (J) since construction.
  common::Joules energy() const { return counter_.exact_joules(); }

  /// Accounts DRAM traffic (bytes moved) for the memory-power extension.
  void deposit_dram_traffic(double bytes);

  /// DRAM energy (J) since construction: background power integrated
  /// over the clock plus per-byte access energy.
  common::Joules dram_energy() const;

  /// Raw RAPL counter access (client-visible, quantized & wrapping).
  /// Throws CapabilityError when energy counters are not readable.
  std::uint32_t read_energy_raw() const;
  const RaplCounter& rapl_counter() const;

  const PowerGovernor& governor() const { return governor_; }
  const CacheModel& cache_model() const { return cache_model_; }

  /// Resets clock and energy accounting (fresh experiment on same node).
  void reset();

 private:
  MachineSpec spec_;
  PowerGovernor governor_;
  CacheModel cache_model_;
  RaplPowerLimit limit_;
  RaplCounter counter_;
  common::Seconds clock_ = 0.0;
  common::Joules dram_access_energy_ = 0.0;
  common::Watts last_power_ = 0.0;
  common::Rng noise_;
};

}  // namespace arcs::sim
