#include "sim/msr.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace arcs::sim {

namespace {
constexpr std::uint64_t kLimitMask = 0x7fffULL;       // bits 14:0
constexpr std::uint64_t kEnableBit = 1ULL << 15;
constexpr std::uint64_t kClampBit = 1ULL << 16;
constexpr unsigned kWindowShift = 17;                 // bits 23:17
constexpr std::uint64_t kWindowMask = 0x7fULL;
}  // namespace

std::uint32_t encode_time_window(double seconds, const MsrUnits& units) {
  ARCS_CHECK_MSG(seconds > 0, "time window must be positive");
  const double in_units = seconds / units.time_unit();
  // window = (1 + F/4) * 2^Y; choose Y = floor(log2), then the nearest F.
  int y = static_cast<int>(std::floor(std::log2(std::max(in_units, 1.0))));
  y = std::clamp(y, 0, 31);
  const double frac = in_units / static_cast<double>(1u << y) - 1.0;
  int f = static_cast<int>(std::lround(frac * 4.0));
  f = std::clamp(f, 0, 3);
  return static_cast<std::uint32_t>((f << 5) | y);
}

double decode_time_window(std::uint32_t field, const MsrUnits& units) {
  const unsigned y = field & 0x1f;
  const unsigned f = (field >> 5) & 0x3;
  return (1.0 + static_cast<double>(f) / 4.0) *
         static_cast<double>(1ULL << y) * units.time_unit();
}

MsrDevice::MsrDevice(Machine& machine) : machine_(machine) {
  // Hardware powers up with the limit register reflecting TDP, enabled.
  const auto tdp_units = static_cast<std::uint64_t>(
      std::lround(machine_.spec().tdp / units_.power_unit()));
  power_limit_reg_ =
      (tdp_units & kLimitMask) | kEnableBit | kClampBit |
      (static_cast<std::uint64_t>(encode_time_window(0.01, units_))
       << kWindowShift);
}

std::uint64_t MsrDevice::read(std::uint32_t msr) const {
  switch (msr) {
    case kMsrRaplPowerUnit:
      return static_cast<std::uint64_t>(units_.power_exp) |
             (static_cast<std::uint64_t>(units_.energy_exp) << 8) |
             (static_cast<std::uint64_t>(units_.time_exp) << 16);
    case kMsrPkgPowerLimit:
      return power_limit_reg_;
    case kMsrPkgEnergyStatus:
      // Machine's counter uses the same 2^-16 J quantum; CapabilityError
      // propagates on machines without counter access.
      return machine_.read_energy_raw();
    case kMsrPkgPowerInfo:
      return static_cast<std::uint64_t>(
                 std::lround(machine_.spec().tdp / units_.power_unit())) &
             kLimitMask;
    default:
      throw MsrError("read of unsupported MSR 0x" + std::to_string(msr));
  }
}

void MsrDevice::write(std::uint32_t msr, std::uint64_t value) {
  switch (msr) {
    case kMsrPkgPowerLimit: {
      power_limit_reg_ = value;
      if (value & kEnableBit) {
        const double watts =
            static_cast<double>(value & kLimitMask) * units_.power_unit();
        machine_.set_power_cap(watts);  // throws on uncappable machines
      } else {
        machine_.clear_power_cap();
      }
      return;
    }
    case kMsrRaplPowerUnit:
    case kMsrPkgEnergyStatus:
    case kMsrPkgPowerInfo:
      throw MsrError("write to read-only MSR 0x" + std::to_string(msr));
    default:
      throw MsrError("write to unsupported MSR 0x" + std::to_string(msr));
  }
}

void MsrDevice::set_package_power_limit(double watts,
                                        double window_seconds) {
  ARCS_CHECK_MSG(watts > 0, "power limit must be positive");
  const auto limit_units = static_cast<std::uint64_t>(
      std::lround(watts / units_.power_unit()));
  const std::uint64_t reg =
      (limit_units & kLimitMask) | kEnableBit | kClampBit |
      (static_cast<std::uint64_t>(
           encode_time_window(window_seconds, units_))
       << kWindowShift);
  write(kMsrPkgPowerLimit, reg);
}

void MsrDevice::disable_package_power_limit() {
  write(kMsrPkgPowerLimit, power_limit_reg_ & ~kEnableBit);
}

double MsrDevice::package_power_limit_watts() const {
  if (!(power_limit_reg_ & kEnableBit)) return 0.0;
  return static_cast<double>(power_limit_reg_ & kLimitMask) *
         units_.power_unit();
}

double MsrDevice::package_energy_joules() const {
  return static_cast<double>(read(kMsrPkgEnergyStatus)) *
         units_.energy_unit();
}

double MsrDevice::thermal_spec_power_watts() const {
  return static_cast<double>(read(kMsrPkgPowerInfo)) * units_.power_unit();
}

}  // namespace arcs::sim
