// RAPL (Running Average Power Limit) MSR emulation.
//
// The paper measures energy and enforces caps through libmsr/RAPL and calls
// out its known quirks ("counter update frequency and the warm up period
// after enforcing a power cap"). This module reproduces the interface a
// RAPL client sees:
//
//  * MSR_PKG_ENERGY_STATUS — a 32-bit counter of discrete energy units
//    (default unit 15.3 uJ, from MSR_RAPL_POWER_UNIT) that wraps around and
//    refreshes only on a ~1 ms cadence;
//  * MSR_PKG_POWER_LIMIT — the package power cap, applied by the governor
//    after a short settling (warm-up) window during which the old operating
//    point lingers.
//
// `RaplCounter::joules_between` implements the canonical wraparound-safe
// delta that any RAPL client must perform.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace arcs::sim {

/// Emulated package energy counter (MSR_PKG_ENERGY_STATUS semantics).
class RaplCounter {
 public:
  /// `energy_unit`: joules per raw count. `update_period`: counter refresh.
  explicit RaplCounter(common::Joules energy_unit = 15.3e-6,
                       common::Seconds update_period = 1e-3);

  /// Deposit consumed energy at simulated time `now` (monotone in `now`).
  void deposit(common::Joules joules, common::Seconds now);

  /// Raw 32-bit register read at time `now`. Returns the value as of the
  /// last refresh boundary at or before `now` — reads within one update
  /// period observe a stale value, exactly like hardware.
  std::uint32_t read_raw(common::Seconds now) const;

  /// Exact accumulated energy (simulator-side ground truth, not visible to
  /// a RAPL client).
  common::Joules exact_joules() const { return exact_; }

  common::Joules energy_unit() const { return unit_; }
  common::Seconds update_period() const { return period_; }

  /// Wraparound-safe energy delta between two raw reads.
  common::Joules joules_between(std::uint32_t before,
                                std::uint32_t after) const;

 private:
  common::Joules unit_;
  common::Seconds period_;
  common::Joules exact_ = 0.0;
  // State for the staleness window.
  common::Seconds last_refresh_ = 0.0;
  std::uint64_t visible_counts_ = 0;   // counts as of last refresh
  common::Joules pending_ = 0.0;       // energy since last refresh
};

/// Emulated package power-limit register with a warm-up window: after a new
/// limit is programmed, the effective limit ramps from the old one over
/// `settle_time`.
class RaplPowerLimit {
 public:
  explicit RaplPowerLimit(common::Watts initial_limit,
                          common::Seconds settle_time = 2e-3);

  void program(common::Watts limit, common::Seconds now);

  /// The limit the governor actually enforces at time `now`.
  common::Watts effective(common::Seconds now) const;

  /// The programmed (target) limit.
  common::Watts programmed() const { return target_; }

  common::Seconds settle_time() const { return settle_; }

 private:
  common::Watts target_;
  common::Watts previous_;
  common::Seconds programmed_at_ = 0.0;
  common::Seconds settle_;
};

}  // namespace arcs::sim
