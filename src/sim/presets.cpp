#include "sim/presets.hpp"

namespace arcs::sim {

MachineSpec crill() {
  MachineSpec m;
  m.name = "crill";
  m.topology = {.sockets = 2, .cores_per_socket = 8, .smt_per_core = 2};
  m.frequency = {.f_min = 1.2e9, .f_max = 2.4e9, .step = 100e6};
  // Calibrated so that all 16 cores at 2.4 GHz draw ~112 W (just under
  // the 115 W TDP) and the 55 W cap sits slightly below the all-cores
  // f_min floor — RAPL must duty-cycle 16-core configurations there,
  // while <=12-core teams still run on real P-states. This is the
  // regime that makes the optimal thread count cap-dependent (paper
  // §II).
  m.power = {.uncore = 18.0,
             .core_static = 1.5,
             .core_dyn_ref = 4.4,
             .alpha = 2.2,
             .f_ref = 2.4e9,
             .spin_fraction = 0.30,
             .core_sleep = 0.25};
  m.caches.l1 = {32 * common::kKiB, 1.3, false};
  m.caches.l2 = {256 * common::kKiB, 3.8, false};
  m.caches.l3 = {20 * common::kMiB, 14.0, true};
  m.caches.dram_latency_ns = 78.0;
  m.caches.dram_bandwidth_gbs = 51.2;
  m.smt_throughput = {1.0, 1.25};  // 2-way hyper-threading
  m.config_change_cost = 8e-3;     // paper §III.C: ~8 ms per region call
  m.os_jitter_sigma = 0.01;        // dedicated resource: low noise
  m.tdp = 115.0;
  m.power_cappable = true;
  m.energy_counters = true;
  return m;
}

MachineSpec minotaur() {
  MachineSpec m;
  m.name = "minotaur";
  m.topology = {.sockets = 2, .cores_per_socket = 10, .smt_per_core = 8};
  m.frequency = {.f_min = 2.06e9, .f_max = 2.92e9, .step = 86e6};
  m.power = {.uncore = 32.0,
             .core_static = 1.8,
             .core_dyn_ref = 7.5,
             .alpha = 2.1,
             .f_ref = 2.92e9,
             .spin_fraction = 0.30,
             .core_sleep = 0.4};
  m.caches.l1 = {64 * common::kKiB, 1.1, false};
  m.caches.l2 = {512 * common::kKiB, 4.0, false};
  m.caches.l3 = {80 * common::kMiB, 11.0, true};
  m.caches.dram_latency_ns = 88.0;
  m.caches.dram_bandwidth_gbs = 115.0;
  // POWER8 SMT8 scales far better than 2-way HT but with diminishing
  // returns past SMT4.
  m.smt_throughput = {1.0, 1.45, 1.7, 1.85, 1.95, 2.0, 2.05, 2.1};
  m.config_change_cost = 4e-3;
  m.os_jitter_sigma = 0.04;  // shared resource (paper reports the min of
                             // three runs on Minotaur for this reason)
  m.tdp = 190.0;
  m.power_cappable = false;   // paper: no capping privilege on Minotaur
  m.energy_counters = false;  // paper: no energy counter access
  return m;
}

MachineSpec haswell() {
  MachineSpec m;
  m.name = "haswell";
  m.topology = {.sockets = 2, .cores_per_socket = 12, .smt_per_core = 2};
  m.frequency = {.f_min = 1.2e9, .f_max = 2.6e9, .step = 100e6};
  m.power = {.uncore = 16.0,
             .core_static = 1.1,
             .core_dyn_ref = 3.3,
             .alpha = 2.3,
             .f_ref = 2.6e9,
             .spin_fraction = 0.30,
             .core_sleep = 0.2};
  m.caches.l1 = {32 * common::kKiB, 1.2, false};
  m.caches.l2 = {256 * common::kKiB, 3.5, false};
  m.caches.l3 = {30 * common::kMiB, 13.0, true};
  m.caches.dram_latency_ns = 72.0;
  m.caches.dram_bandwidth_gbs = 68.0;
  m.smt_throughput = {1.0, 1.28};
  m.config_change_cost = 7e-3;
  m.os_jitter_sigma = 0.01;
  m.tdp = 120.0;
  m.power_cappable = true;
  m.energy_counters = true;
  return m;
}

MachineSpec testbox() {
  MachineSpec m;
  m.name = "testbox";
  m.topology = {.sockets = 1, .cores_per_socket = 4, .smt_per_core = 1};
  m.frequency = {.f_min = 1.0e9, .f_max = 2.0e9, .step = 100e6};
  m.power = {.uncore = 5.0,
             .core_static = 0.5,
             .core_dyn_ref = 3.0,
             .alpha = 2.0,
             .f_ref = 2.0e9,
             .spin_fraction = 0.30,
             .core_sleep = 0.1};
  m.caches.l1 = {32 * common::kKiB, 1.3, false};
  m.caches.l2 = {256 * common::kKiB, 3.8, false};
  m.caches.l3 = {4 * common::kMiB, 12.0, true};
  m.caches.dram_latency_ns = 70.0;
  m.caches.dram_bandwidth_gbs = 20.0;
  m.smt_throughput = {1.0};
  m.config_change_cost = 1e-3;
  m.tdp = 20.0;
  m.power_cappable = true;
  m.energy_counters = true;
  return m;
}

}  // namespace arcs::sim
