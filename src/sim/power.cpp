#include "sim/power.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace arcs::sim {

common::Watts PowerModel::core_dynamic(common::Hertz f) const {
  ARCS_CHECK(f_ref > 0);
  return core_dyn_ref * std::pow(f / f_ref, alpha);
}

common::Watts PowerModel::core_busy(common::Hertz f) const {
  return core_static + core_dynamic(f);
}

common::Watts PowerModel::core_spin(common::Hertz f) const {
  return core_static + spin_fraction * core_dynamic(f);
}

common::Watts PowerModel::package_power(common::Hertz f,
                                        int active_cores) const {
  ARCS_CHECK(active_cores >= 0);
  return uncore + static_cast<double>(active_cores) * core_busy(f);
}

OperatingPoint PowerGovernor::operating_point(common::Watts cap,
                                              int active_cores) const {
  ARCS_CHECK(active_cores >= 1);
  OperatingPoint op;
  if (power_.package_power(freq_.f_max, active_cores) <= cap) {
    op.frequency = freq_.f_max;
    return op;
  }
  // Walk the P-state ladder downward (few tens of states; linear is fine
  // and keeps the selection identical to firmware's highest-feasible rule).
  const auto states = freq_.pstates();
  for (auto it = states.rbegin(); it != states.rend(); ++it) {
    if (power_.package_power(*it, active_cores) <= cap) {
      op.frequency = *it;
      return op;
    }
  }
  // Even f_min violates the cap: duty-cycle. Idle phases of the duty cycle
  // still pay uncore + static power, so solve
  //   uncore + a*static + duty * a*dyn(f_min) = cap  for duty.
  op.frequency = freq_.f_min;
  const double a = static_cast<double>(active_cores);
  const common::Watts floor_power =
      power_.uncore + a * power_.core_static;
  const common::Watts dyn = a * power_.core_dynamic(freq_.f_min);
  op.duty = std::clamp((cap - floor_power) / std::max(dyn, 1e-9), 0.05, 1.0);
  return op;
}

common::Watts PowerGovernor::power_at(const OperatingPoint& op,
                                      int active_cores) const {
  const double a = static_cast<double>(active_cores);
  return power_.uncore + a * power_.core_static +
         op.duty * a * power_.core_dynamic(op.frequency);
}

}  // namespace arcs::sim
