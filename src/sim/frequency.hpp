// Discrete P-state frequency model.
//
// Real processors expose a ladder of frequency steps (P-states); RAPL-style
// power capping reduces the operating frequency along that ladder, and below
// the lowest step enforces the cap by duty-cycling (clock gating). The
// model exposes exactly that: quantized frequencies plus a duty factor.
#pragma once

#include <vector>

#include "common/units.hpp"

namespace arcs::sim {

struct FrequencyModel {
  common::Hertz f_min = 1.2e9;
  common::Hertz f_max = 2.4e9;
  common::Hertz step = 100e6;

  /// All selectable P-state frequencies, ascending (f_min..f_max).
  std::vector<common::Hertz> pstates() const;

  /// Highest P-state <= f (clamped into [f_min, f_max]).
  common::Hertz quantize(common::Hertz f) const;

  int num_pstates() const;
};

/// An operating point chosen by the power governor.
struct OperatingPoint {
  common::Hertz frequency = 0.0;  ///< selected P-state
  double duty = 1.0;              ///< <1 when clock gating below f_min
  /// Throughput-equivalent frequency (what computation proceeds at).
  common::Hertz effective_frequency() const { return frequency * duty; }
};

}  // namespace arcs::sim
