// OMPT-style tool interface for the simulated OpenMP runtime.
//
// Mirrors the event set of the OMPT Proposed Draft TR the paper relies on
// (Eichenberger et al., IWOMP'13): parallel region begin/end, implicit task
// begin/end, worksharing (loop) begin/end, and synchronization region
// (barrier) begin/end, with runtime-populated identifiers. Timestamps are
// virtual seconds from the machine simulator; per-thread events carry the
// thread's own virtual clock, which is what lets a tool attribute loop vs
// barrier time exactly as TAU/APEX do in the paper (Fig. 9).
//
// Deviations from the draft, for clarity in a simulator:
//  * tools register std::function callbacks instead of C function pointers;
//  * multiple tools may subscribe (the registry fans out);
//  * events are delivered synchronously on the (single) simulation thread.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"

namespace arcs::ompt {

using ParallelId = std::uint64_t;

enum class Endpoint { Begin, End };

enum class SyncRegionKind {
  BarrierImplicit,  ///< implicit barrier at the end of a worksharing region
  BarrierExplicit,
};

/// Identifies the source parallel region (stable across invocations), the
/// analogue of OMPT's codeptr_ra.
struct RegionIdentifier {
  std::string name;          ///< source-level name, e.g. "x_solve"
  std::uint64_t codeptr = 0; ///< stable numeric id for the code location

  bool operator==(const RegionIdentifier&) const = default;
};

struct ParallelBeginRecord {
  ParallelId parallel_id = 0;      ///< unique per dynamic region instance
  RegionIdentifier region;
  int requested_team_size = 0;
  common::Seconds time = 0;        ///< app virtual clock at entry
};

struct ParallelEndRecord {
  ParallelId parallel_id = 0;
  RegionIdentifier region;
  int team_size = 0;
  common::Seconds time = 0;        ///< app virtual clock at exit
};

struct ImplicitTaskRecord {
  Endpoint endpoint = Endpoint::Begin;
  ParallelId parallel_id = 0;
  int thread_num = 0;
  common::Seconds time = 0;        ///< thread-local virtual clock
};

struct WorkLoopRecord {
  Endpoint endpoint = Endpoint::Begin;
  ParallelId parallel_id = 0;
  int thread_num = 0;
  common::Seconds time = 0;
};

struct SyncRegionRecord {
  Endpoint endpoint = Endpoint::Begin;
  SyncRegionKind kind = SyncRegionKind::BarrierImplicit;
  ParallelId parallel_id = 0;
  int thread_num = 0;
  common::Seconds time = 0;
};

/// Resolved worksharing schedule of a loop, as reported to tools.
enum class WorkSchedule : std::uint8_t { Static, Dynamic, Guided };

std::string_view to_string(WorkSchedule schedule);

/// Announces the resolved dispatch plan of one worksharing loop, emitted
/// once per region right after parallel-begin. The chunk-level analogue of
/// OMPT 5.0's ompt_callback_dispatch metadata; lets verification tools
/// audit iteration coverage against the advertised trip count.
struct LoopPlanRecord {
  ParallelId parallel_id = 0;
  std::int64_t iterations = 0;  ///< loop trip count
  int team_size = 0;
  WorkSchedule schedule = WorkSchedule::Static;
  std::int64_t chunk = 0;       ///< resolved chunk size
};

/// One chunk grab: thread `thread_num` took iterations [begin, end) at
/// thread-local virtual time `time` (the analogue of
/// ompt_callback_dispatch with ompt_dispatch_ws_loop_chunk).
struct ChunkDispatchRecord {
  ParallelId parallel_id = 0;
  int thread_num = 0;
  std::int64_t begin = 0;
  std::int64_t end = 0;  ///< exclusive
  common::Seconds time = 0;
};

/// Callback set a tool registers. Unset callbacks are simply not invoked
/// ("incur minimal overhead when not in use").
struct ToolCallbacks {
  std::function<void(const ParallelBeginRecord&)> parallel_begin;
  std::function<void(const ParallelEndRecord&)> parallel_end;
  std::function<void(const ImplicitTaskRecord&)> implicit_task;
  std::function<void(const WorkLoopRecord&)> work_loop;
  std::function<void(const SyncRegionRecord&)> sync_region;
  std::function<void(const LoopPlanRecord&)> loop_plan;
  std::function<void(const ChunkDispatchRecord&)> chunk_dispatch;
};

/// How a tool participates. `Client` tools are the paper's measurement
/// tools (APEX): attaching one costs instrumentation time in the runtime.
/// `Observer` tools are passive verifiers (src/analysis/): they receive
/// the same events but must not perturb the simulation they are checking.
enum class ToolKind : std::uint8_t { Client, Observer };

/// Fan-out registry owned by the runtime; tools subscribe at init.
class ToolRegistry {
 public:
  /// Registers a tool; returns a handle usable for unregistering.
  std::size_t register_tool(ToolCallbacks callbacks,
                            ToolKind kind = ToolKind::Client);
  void unregister_tool(std::size_t handle);

  bool empty() const { return active_count_ == 0; }
  std::size_t tool_count() const { return active_count_; }

  /// True when at least one Client (overhead-bearing) tool is attached.
  bool has_clients() const { return client_count_ > 0; }
  std::size_t client_count() const { return client_count_; }

  void emit_parallel_begin(const ParallelBeginRecord& r) const;
  void emit_parallel_end(const ParallelEndRecord& r) const;
  void emit_implicit_task(const ImplicitTaskRecord& r) const;
  void emit_work_loop(const WorkLoopRecord& r) const;
  void emit_sync_region(const SyncRegionRecord& r) const;
  void emit_loop_plan(const LoopPlanRecord& r) const;
  void emit_chunk_dispatch(const ChunkDispatchRecord& r) const;

 private:
  struct Entry {
    ToolCallbacks callbacks;
    ToolKind kind = ToolKind::Client;
    bool active = false;
  };
  std::vector<Entry> tools_;
  std::size_t active_count_ = 0;
  std::size_t client_count_ = 0;
};

/// Allocates process-unique parallel ids (monotone from 1).
class ParallelIdAllocator {
 public:
  ParallelId next() { return ++last_; }
  ParallelId last() const { return last_; }

 private:
  ParallelId last_ = 0;
};

}  // namespace arcs::ompt
