#include "ompt/ompt.hpp"

#include "common/check.hpp"

namespace arcs::ompt {

std::string_view to_string(WorkSchedule schedule) {
  switch (schedule) {
    case WorkSchedule::Static: return "static";
    case WorkSchedule::Dynamic: return "dynamic";
    case WorkSchedule::Guided: return "guided";
  }
  return "?";
}

std::size_t ToolRegistry::register_tool(ToolCallbacks callbacks,
                                        ToolKind kind) {
  // Reuse a vacated slot if any, to keep handles stable.
  for (std::size_t i = 0; i < tools_.size(); ++i) {
    if (!tools_[i].active) {
      tools_[i] = {std::move(callbacks), kind, true};
      ++active_count_;
      if (kind == ToolKind::Client) ++client_count_;
      return i;
    }
  }
  tools_.push_back({std::move(callbacks), kind, true});
  ++active_count_;
  if (kind == ToolKind::Client) ++client_count_;
  return tools_.size() - 1;
}

void ToolRegistry::unregister_tool(std::size_t handle) {
  ARCS_CHECK_MSG(handle < tools_.size() && tools_[handle].active,
                 "unregistering an unknown tool handle");
  if (tools_[handle].kind == ToolKind::Client) --client_count_;
  tools_[handle] = {};
  --active_count_;
}

void ToolRegistry::emit_parallel_begin(const ParallelBeginRecord& r) const {
  for (const auto& t : tools_)
    if (t.active && t.callbacks.parallel_begin) t.callbacks.parallel_begin(r);
}

void ToolRegistry::emit_parallel_end(const ParallelEndRecord& r) const {
  for (const auto& t : tools_)
    if (t.active && t.callbacks.parallel_end) t.callbacks.parallel_end(r);
}

void ToolRegistry::emit_implicit_task(const ImplicitTaskRecord& r) const {
  for (const auto& t : tools_)
    if (t.active && t.callbacks.implicit_task) t.callbacks.implicit_task(r);
}

void ToolRegistry::emit_work_loop(const WorkLoopRecord& r) const {
  for (const auto& t : tools_)
    if (t.active && t.callbacks.work_loop) t.callbacks.work_loop(r);
}

void ToolRegistry::emit_sync_region(const SyncRegionRecord& r) const {
  for (const auto& t : tools_)
    if (t.active && t.callbacks.sync_region) t.callbacks.sync_region(r);
}

void ToolRegistry::emit_loop_plan(const LoopPlanRecord& r) const {
  for (const auto& t : tools_)
    if (t.active && t.callbacks.loop_plan) t.callbacks.loop_plan(r);
}

void ToolRegistry::emit_chunk_dispatch(const ChunkDispatchRecord& r) const {
  for (const auto& t : tools_)
    if (t.active && t.callbacks.chunk_dispatch) t.callbacks.chunk_dispatch(r);
}

}  // namespace arcs::ompt
