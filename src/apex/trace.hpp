// OMPT event trace buffer — the post-mortem timeline view a tool like
// TAU builds. Registers as an additional OMPT tool (the registry fans
// out), records every event with its virtual timestamp into a bounded
// buffer, and can export CSV for external plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ompt/ompt.hpp"
#include "somp/runtime.hpp"

namespace arcs::apex {

/// One flattened trace event.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    ParallelBegin,
    ParallelEnd,
    ImplicitTaskBegin,
    ImplicitTaskEnd,
    LoopBegin,
    LoopEnd,
    BarrierBegin,
    BarrierEnd,
  };
  Kind kind = Kind::ParallelBegin;
  ompt::ParallelId parallel_id = 0;
  std::string region;  ///< filled for parallel begin/end only
  int thread = -1;     ///< -1 for region-scope events
  double time = 0;     ///< virtual seconds
};

std::string_view to_string(TraceEvent::Kind kind);

class TraceBuffer {
 public:
  /// Attaches to the runtime's tool registry. `capacity` bounds memory;
  /// once full, the oldest events are dropped (a ring), and
  /// dropped_events() reports how many.
  explicit TraceBuffer(somp::Runtime& runtime, std::size_t capacity = 1
                                                   << 20);
  ~TraceBuffer();

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Events currently retained, oldest first.
  std::vector<TraceEvent> events() const;

  std::size_t size() const { return count_; }
  /// Events lost to ring overflow (oldest are overwritten). A one-line
  /// warning is logged on the first drop; write_trace_status() surfaces
  /// the total in reports.
  std::size_t dropped_events() const { return dropped_; }
  /// Ring capacity in events (the ctor argument).
  std::size_t capacity() const { return ring_.size(); }
  void clear();

  /// CSV: kind,parallel_id,region,thread,time
  void export_csv(std::ostream& os) const;

 private:
  void push(TraceEvent event);

  somp::Runtime& runtime_;
  std::size_t handle_ = 0;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;   ///< next write slot
  std::size_t count_ = 0;  ///< valid entries
  std::size_t dropped_ = 0;
};

}  // namespace arcs::apex
