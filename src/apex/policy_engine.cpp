#include "apex/policy_engine.hpp"

#include "common/check.hpp"

namespace arcs::apex {

PolicyHandle PolicyEngine::add(Entry entry) {
  entry.active = true;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].active) {
      entries_[i] = std::move(entry);
      return i;
    }
  }
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

PolicyHandle PolicyEngine::register_start_policy(StartPolicy policy) {
  ARCS_CHECK(policy != nullptr);
  Entry e;
  e.kind = Entry::Kind::Start;
  e.start = std::move(policy);
  return add(std::move(e));
}

PolicyHandle PolicyEngine::register_stop_policy(StopPolicy policy) {
  ARCS_CHECK(policy != nullptr);
  Entry e;
  e.kind = Entry::Kind::Stop;
  e.stop = std::move(policy);
  return add(std::move(e));
}

PolicyHandle PolicyEngine::register_periodic_policy(common::Seconds period,
                                                    PeriodicPolicy policy) {
  ARCS_CHECK(policy != nullptr);
  ARCS_CHECK_MSG(period > 0, "periodic policy needs a positive period");
  Entry e;
  e.kind = Entry::Kind::Periodic;
  e.periodic = std::move(policy);
  e.period = period;
  e.next_fire = period;
  return add(std::move(e));
}

void PolicyEngine::deregister(PolicyHandle handle) {
  ARCS_CHECK_MSG(handle < entries_.size() && entries_[handle].active,
                 "deregistering an unknown policy");
  entries_[handle] = {};
}

std::size_t PolicyEngine::policy_count() const {
  std::size_t n = 0;
  for (const auto& e : entries_)
    if (e.active) ++n;
  return n;
}

void PolicyEngine::fire_start(const TimerEvent& event) {
  for (auto& e : entries_)
    if (e.active && e.kind == Entry::Kind::Start) e.start(event);
}

void PolicyEngine::fire_stop(const TimerEvent& event) {
  for (auto& e : entries_)
    if (e.active && e.kind == Entry::Kind::Stop) e.stop(event);
}

void PolicyEngine::advance_time(common::Seconds now) {
  for (auto& e : entries_) {
    if (!e.active || e.kind != Entry::Kind::Periodic) continue;
    while (e.next_fire <= now) {
      e.periodic(e.next_fire);
      e.next_fire += e.period;
    }
  }
}

}  // namespace arcs::apex
