// The APEX policy engine.
//
// "The most distinguishing component in APEX is the policy engine. ...
// Policies are rules that decide on outcomes based on the observed state
// captured by APEX. The rules are encoded as callback functions that are
// periodic or triggered by events."
//
// Here the triggering events are APEX timer start/stop (driven by OMPT
// parallel begin/end, as in the paper §III.B), plus periodic rules driven
// by the advancing virtual clock.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace arcs::apex {

/// Event passed to triggered policies.
struct TimerEvent {
  std::string task;             ///< region name
  std::uint64_t instance = 0;   ///< dynamic region instance (parallel id)
  common::Seconds timestamp = 0;///< app virtual clock
  common::Seconds duration = 0; ///< stop events only
};

using PolicyHandle = std::size_t;

class PolicyEngine {
 public:
  using StartPolicy = std::function<void(const TimerEvent&)>;
  using StopPolicy = std::function<void(const TimerEvent&)>;
  using PeriodicPolicy = std::function<void(common::Seconds now)>;

  PolicyHandle register_start_policy(StartPolicy policy);
  PolicyHandle register_stop_policy(StopPolicy policy);
  /// Fires every `period` of virtual time (checked as time advances).
  PolicyHandle register_periodic_policy(common::Seconds period,
                                        PeriodicPolicy policy);
  void deregister(PolicyHandle handle);

  std::size_t policy_count() const;

  // --- driven by the APEX core ---
  void fire_start(const TimerEvent& event);
  void fire_stop(const TimerEvent& event);
  /// Advances the periodic-policy clock to `now`, firing due policies.
  void advance_time(common::Seconds now);

 private:
  struct Entry {
    enum class Kind { Start, Stop, Periodic } kind = Kind::Start;
    StartPolicy start;
    StopPolicy stop;
    PeriodicPolicy periodic;
    common::Seconds period = 0;
    common::Seconds next_fire = 0;
    bool active = false;
  };
  PolicyHandle add(Entry entry);
  std::vector<Entry> entries_;
};

}  // namespace arcs::apex
