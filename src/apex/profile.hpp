// APEX-style profiles: per-task accumulated measurements.
//
// A Profile is the summary APEX keeps for each (task, metric) pair — call
// count, total, min, max, last — and what policy rules query ("the rules
// access the APEX state in order to request profile values from any
// measurement collected by APEX").
#pragma once

#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace arcs::apex {

/// Metrics the OMPT adapter collects per parallel region.
enum class Metric {
  RegionTime,        ///< wall time of the region (timer start..stop)
  ImplicitTaskTime,  ///< sum over threads of implicit-task spans (Fig 9)
  LoopTime,          ///< sum over threads of loop-body spans
  BarrierTime,       ///< sum over threads of barrier waits (OMP_BARRIER)
  RegionEnergy,      ///< package joules attributed to the region
};

std::string_view to_string(Metric metric);

struct Profile {
  std::size_t calls = 0;
  double total = 0.0;
  double minimum = std::numeric_limits<double>::infinity();
  double maximum = 0.0;
  double last = 0.0;

  void record(double value) {
    ++calls;
    total += value;
    if (value < minimum) minimum = value;
    if (value > maximum) maximum = value;
    last = value;
  }

  double mean() const {
    return calls ? total / static_cast<double>(calls) : 0.0;
  }
};

/// Keyed store of profiles. Task names are region names; lookups by
/// (task, metric).
class ProfileStore {
 public:
  Profile& at(std::string_view task, Metric metric);

  /// nullptr when the pair was never recorded.
  const Profile* find(std::string_view task, Metric metric) const;

  /// All task names seen (sorted).
  std::vector<std::string> tasks() const;

  void clear() { profiles_.clear(); }

 private:
  std::map<std::pair<std::string, Metric>, Profile> profiles_;
};

}  // namespace arcs::apex
