#include "apex/profile.hpp"

#include <algorithm>

namespace arcs::apex {

std::string_view to_string(Metric metric) {
  switch (metric) {
    case Metric::RegionTime:
      return "REGION_TIME";
    case Metric::ImplicitTaskTime:
      return "OpenMP_IMPLICIT_TASK";
    case Metric::LoopTime:
      return "OpenMP_LOOP";
    case Metric::BarrierTime:
      return "OpenMP_BARRIER";
    case Metric::RegionEnergy:
      return "REGION_ENERGY";
  }
  return "UNKNOWN";
}

Profile& ProfileStore::at(std::string_view task, Metric metric) {
  return profiles_[{std::string(task), metric}];
}

const Profile* ProfileStore::find(std::string_view task,
                                  Metric metric) const {
  const auto it = profiles_.find({std::string(task), metric});
  return it == profiles_.end() ? nullptr : &it->second;
}

std::vector<std::string> ProfileStore::tasks() const {
  std::vector<std::string> names;
  for (const auto& [key, _] : profiles_) {
    if (names.empty() || names.back() != key.first)
      names.push_back(key.first);
  }
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace arcs::apex
