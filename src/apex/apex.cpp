#include "apex/apex.hpp"

#include "common/check.hpp"
#include "telemetry/telemetry.hpp"

namespace arcs::apex {

Apex::Apex(somp::Runtime& runtime, ApexOptions options)
    : runtime_(runtime), options_(options) {
  energy_readable_ =
      options_.sample_energy && runtime_.machine().spec().energy_counters;

  ompt::ToolCallbacks cb;
  cb.parallel_begin = [this](const ompt::ParallelBeginRecord& r) {
    on_parallel_begin(r);
  };
  cb.parallel_end = [this](const ompt::ParallelEndRecord& r) {
    on_parallel_end(r);
  };
  cb.implicit_task = [this](const ompt::ImplicitTaskRecord& r) {
    on_implicit_task(r);
  };
  cb.work_loop = [this](const ompt::WorkLoopRecord& r) { on_work_loop(r); };
  cb.sync_region = [this](const ompt::SyncRegionRecord& r) {
    on_sync_region(r);
  };
  tool_handle_ = runtime_.tools().register_tool(std::move(cb));
}

Apex::~Apex() { runtime_.tools().unregister_tool(tool_handle_); }

double Apex::total(std::string_view task, Metric metric) const {
  const Profile* p = profiles_.find(task, metric);
  return p ? p->total : 0.0;
}

void Apex::sample_counter(std::string_view name, double value) {
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), Profile{}).first;
  it->second.record(value);
}

const Profile* Apex::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

std::vector<std::string> Apex::counter_names() const {
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, profile] : counters_) names.push_back(name);
  return names;
}

void Apex::publish_counters(telemetry::MetricsRegistry& registry) const {
  for (const auto& [name, profile] : counters_) {
    registry.gauge("apex/" + name).set(profile.last);
    registry.gauge("apex/" + name + "/mean").set(profile.mean());
    registry.gauge("apex/" + name + "/samples")
        .set(static_cast<double>(profile.calls));
  }
}

void Apex::on_parallel_begin(const ompt::ParallelBeginRecord& r) {
  LiveRegion live;
  live.name = r.region.name;
  live.start_time = r.time;
  if (energy_readable_)
    live.energy_raw_before = runtime_.machine().read_energy_raw();
  live_[r.parallel_id] = std::move(live);

  policies_.fire_start({r.region.name, r.parallel_id, r.time, 0.0});
}

void Apex::on_parallel_end(const ompt::ParallelEndRecord& r) {
  const auto it = live_.find(r.parallel_id);
  ARCS_CHECK_MSG(it != live_.end(), "parallel_end without matching begin");
  LiveRegion& live = it->second;

  const common::Seconds duration = r.time - live.start_time;
  profiles_.at(live.name, Metric::RegionTime).record(duration);
  profiles_.at(live.name, Metric::ImplicitTaskTime)
      .record(live.implicit_total);
  profiles_.at(live.name, Metric::LoopTime).record(live.loop_total);
  profiles_.at(live.name, Metric::BarrierTime).record(live.barrier_total);

  if (energy_readable_) {
    const std::uint32_t after = runtime_.machine().read_energy_raw();
    const common::Joules joules =
        runtime_.machine().rapl_counter().joules_between(
            live.energy_raw_before, after);
    profiles_.at(live.name, Metric::RegionEnergy).record(joules);
  }

  ++regions_observed_;

  // Mirror the finished timer onto the trace as a virtual-time span —
  // "the OMPT interface starts a timer upon entry ... stops upon exit",
  // now visible on its own lane next to the raw somp spans.
  telemetry::Tracer& tracer = telemetry::Tracer::instance();
  if (tracer.enabled()) {
    if (!trace_lane_claimed_) {
      trace_lane_ = tracer.allocate_virtual_tracks(1);
      tracer.name_track(telemetry::TimeDomain::Virtual, trace_lane_,
                        "apex timers");
      trace_lane_claimed_ = true;
    }
    tracer.complete(telemetry::Category::Apex,
                    telemetry::TimeDomain::Virtual, "timer:" + live.name,
                    trace_lane_, live.start_time, duration, 0, 0, 0,
                    r.parallel_id);
  }

  const TimerEvent stop{live.name, r.parallel_id, r.time, duration};
  live_.erase(it);
  policies_.fire_stop(stop);
  policies_.advance_time(r.time);
}

void Apex::on_implicit_task(const ompt::ImplicitTaskRecord& r) {
  const auto key = std::make_pair(r.parallel_id, r.thread_num);
  if (r.endpoint == ompt::Endpoint::Begin) {
    spans_[key].implicit_begin = r.time;
    return;
  }
  const auto it = spans_.find(key);
  ARCS_CHECK_MSG(it != spans_.end(), "implicit task end without begin");
  const auto live = live_.find(r.parallel_id);
  if (live != live_.end())
    live->second.implicit_total += r.time - it->second.implicit_begin;
  spans_.erase(it);  // implicit-task end is the last per-thread event
}

void Apex::on_work_loop(const ompt::WorkLoopRecord& r) {
  const auto key = std::make_pair(r.parallel_id, r.thread_num);
  if (r.endpoint == ompt::Endpoint::Begin) {
    spans_[key].loop_begin = r.time;
    return;
  }
  const auto it = spans_.find(key);
  ARCS_CHECK_MSG(it != spans_.end(), "loop end without begin");
  const auto live = live_.find(r.parallel_id);
  if (live != live_.end())
    live->second.loop_total += r.time - it->second.loop_begin;
}

void Apex::on_sync_region(const ompt::SyncRegionRecord& r) {
  const auto key = std::make_pair(r.parallel_id, r.thread_num);
  if (r.endpoint == ompt::Endpoint::Begin) {
    auto it = spans_.find(key);
    ARCS_CHECK_MSG(it != spans_.end(), "barrier begin before task begin");
    it->second.barrier_begin = r.time;
    return;
  }
  const auto it = spans_.find(key);
  ARCS_CHECK_MSG(it != spans_.end(), "barrier end without begin");
  const auto live = live_.find(r.parallel_id);
  if (live != live_.end())
    live->second.barrier_total += r.time - it->second.barrier_begin;
}

}  // namespace arcs::apex
