// Human-readable profile reports (the pprof/TAU-style dump the paper's
// workflow relies on: "We used TAU for our analysis. We profiled LULESH
// running with the default configuration...").
#pragma once

#include <iosfwd>

#include "apex/apex.hpp"
#include "apex/trace.hpp"

namespace arcs::apex {

struct ReportOptions {
  /// Print at most this many regions (by inclusive time); 0 = all.
  std::size_t top = 0;
  /// Include the OMPT event breakdown columns.
  bool event_breakdown = true;
  /// Include the per-region energy column (when counters were readable).
  bool energy = true;
};

/// Writes a sorted per-region profile table (descending inclusive time).
void write_profile_report(const Apex& apex, std::ostream& os,
                          const ReportOptions& options = {});

/// Writes the user-counter statistics table (alphabetical).
void write_counter_report(const Apex& apex, std::ostream& os);

/// Writes one line of trace-buffer health: retained events, ring
/// capacity, and how many events overflow discarded — so a truncated
/// timeline is never mistaken for a complete one.
void write_trace_status(const TraceBuffer& trace, std::ostream& os);

}  // namespace arcs::apex
