// Human-readable profile reports (the pprof/TAU-style dump the paper's
// workflow relies on: "We used TAU for our analysis. We profiled LULESH
// running with the default configuration...").
#pragma once

#include <iosfwd>

#include "apex/apex.hpp"

namespace arcs::apex {

struct ReportOptions {
  /// Print at most this many regions (by inclusive time); 0 = all.
  std::size_t top = 0;
  /// Include the OMPT event breakdown columns.
  bool event_breakdown = true;
  /// Include the per-region energy column (when counters were readable).
  bool energy = true;
};

/// Writes a sorted per-region profile table (descending inclusive time).
void write_profile_report(const Apex& apex, std::ostream& os,
                          const ReportOptions& options = {});

/// Writes the user-counter statistics table (alphabetical).
void write_counter_report(const Apex& apex, std::ostream& os);

}  // namespace arcs::apex
