#include "apex/report.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "common/table.hpp"

namespace arcs::apex {

void write_profile_report(const Apex& apex, std::ostream& os,
                          const ReportOptions& options) {
  struct Row {
    std::string task;
    const Profile* time;
  };
  std::vector<Row> rows;
  for (const auto& task : apex.profiles().tasks()) {
    const Profile* p = apex.profiles().find(task, Metric::RegionTime);
    if (p != nullptr) rows.push_back({task, p});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.time->total > b.time->total;
  });
  if (options.top > 0 && rows.size() > options.top)
    rows.resize(options.top);

  std::vector<std::string> headers{"region",   "calls", "total (s)",
                                   "mean (ms)", "min (ms)", "max (ms)"};
  if (options.event_breakdown)
    headers.insert(headers.end(), {"LOOP (s)", "BARRIER (s)", "barrier %"});
  if (options.energy) headers.push_back("energy (J)");

  common::Table table{headers};
  for (const auto& row : rows) {
    auto& r = table.row()
                  .cell(row.task)
                  .cell(row.time->calls)
                  .cell(row.time->total, 3)
                  .cell(row.time->mean() * 1e3, 3)
                  .cell(row.time->minimum * 1e3, 3)
                  .cell(row.time->maximum * 1e3, 3);
    if (options.event_breakdown) {
      const double loop = apex.total(row.task, Metric::LoopTime);
      const double barrier = apex.total(row.task, Metric::BarrierTime);
      const double implicit = apex.total(row.task, Metric::ImplicitTaskTime);
      r.cell(loop, 3).cell(barrier, 3).cell(
          implicit > 0 ? 100.0 * barrier / implicit : 0.0, 1);
    }
    if (options.energy)
      r.cell(apex.total(row.task, Metric::RegionEnergy), 1);
  }
  os << "APEX profile report (" << rows.size() << " regions, "
     << apex.regions_observed() << " region instances)\n";
  table.print(os);
}

void write_counter_report(const Apex& apex, std::ostream& os) {
  common::Table table({"counter", "samples", "mean", "min", "max", "last"});
  for (const auto& name : apex.counter_names()) {
    const Profile* p = apex.counter(name);
    table.row()
        .cell(name)
        .cell(p->calls)
        .cell(p->mean(), 4)
        .cell(p->minimum, 4)
        .cell(p->maximum, 4)
        .cell(p->last, 4);
  }
  os << "APEX counters\n";
  table.print(os);
}

void write_trace_status(const TraceBuffer& trace, std::ostream& os) {
  os << "APEX trace: " << trace.size() << " events retained (capacity "
     << trace.capacity() << "), " << trace.dropped_events()
     << " dropped by ring overflow";
  if (trace.dropped_events() > 0)
    os << " — timeline is TRUNCATED; oldest events were overwritten";
  os << "\n";
}

}  // namespace arcs::apex
