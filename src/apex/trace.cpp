#include "apex/trace.hpp"

#include <ostream>

#include "common/check.hpp"
#include "common/log.hpp"

namespace arcs::apex {

std::string_view to_string(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::ParallelBegin:
      return "parallel_begin";
    case TraceEvent::Kind::ParallelEnd:
      return "parallel_end";
    case TraceEvent::Kind::ImplicitTaskBegin:
      return "implicit_task_begin";
    case TraceEvent::Kind::ImplicitTaskEnd:
      return "implicit_task_end";
    case TraceEvent::Kind::LoopBegin:
      return "loop_begin";
    case TraceEvent::Kind::LoopEnd:
      return "loop_end";
    case TraceEvent::Kind::BarrierBegin:
      return "barrier_begin";
    case TraceEvent::Kind::BarrierEnd:
      return "barrier_end";
  }
  return "unknown";
}

TraceBuffer::TraceBuffer(somp::Runtime& runtime, std::size_t capacity)
    : runtime_(runtime), ring_(capacity) {
  ARCS_CHECK_MSG(capacity >= 8, "trace buffer too small to be useful");
  using K = TraceEvent::Kind;
  ompt::ToolCallbacks cb;
  cb.parallel_begin = [this](const ompt::ParallelBeginRecord& r) {
    push({K::ParallelBegin, r.parallel_id, r.region.name, -1, r.time});
  };
  cb.parallel_end = [this](const ompt::ParallelEndRecord& r) {
    push({K::ParallelEnd, r.parallel_id, r.region.name, -1, r.time});
  };
  cb.implicit_task = [this](const ompt::ImplicitTaskRecord& r) {
    push({r.endpoint == ompt::Endpoint::Begin ? K::ImplicitTaskBegin
                                              : K::ImplicitTaskEnd,
          r.parallel_id, {}, r.thread_num, r.time});
  };
  cb.work_loop = [this](const ompt::WorkLoopRecord& r) {
    push({r.endpoint == ompt::Endpoint::Begin ? K::LoopBegin : K::LoopEnd,
          r.parallel_id, {}, r.thread_num, r.time});
  };
  cb.sync_region = [this](const ompt::SyncRegionRecord& r) {
    push({r.endpoint == ompt::Endpoint::Begin ? K::BarrierBegin
                                              : K::BarrierEnd,
          r.parallel_id, {}, r.thread_num, r.time});
  };
  handle_ = runtime_.tools().register_tool(std::move(cb));
}

TraceBuffer::~TraceBuffer() { runtime_.tools().unregister_tool(handle_); }

void TraceBuffer::push(TraceEvent event) {
  ring_[head_] = std::move(event);
  head_ = (head_ + 1) % ring_.size();
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    if (dropped_ == 0)
      common::log_warn()
          << "apex: trace ring full (capacity " << ring_.size()
          << " events), overwriting oldest; pass a larger capacity to "
          << "TraceBuffer to keep the full timeline";
    ++dropped_;
  }
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  const std::size_t start =
      count_ < ring_.size() ? 0 : head_;  // oldest retained entry
  for (std::size_t i = 0; i < count_; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

void TraceBuffer::clear() {
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
}

void TraceBuffer::export_csv(std::ostream& os) const {
  os << "kind,parallel_id,region,thread,time\n";
  for (const auto& e : events()) {
    os << to_string(e.kind) << ',' << e.parallel_id << ',' << e.region
       << ',' << e.thread << ',' << e.time << '\n';
  }
}

}  // namespace arcs::apex
