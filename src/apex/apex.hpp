// APEX core: OMPT adapter + introspection state + policy engine.
//
// Mirrors the paper's APEX role (§III.B): "The OMPT interface starts a
// timer upon entry to an OpenMP parallel region and stops that timer upon
// exit"; profiles accumulate per-region wall time, the per-thread OMPT
// event breakdown (implicit task / loop / barrier — Fig. 9's three
// events), and the region's package energy read through the emulated RAPL
// counter (with its quantization and wraparound, handled the way a real
// RAPL client must).
//
// Policies subscribe to timer start/stop events; the ARCS policy (core/)
// is one such client.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apex/policy_engine.hpp"
#include "apex/profile.hpp"
#include "ompt/ompt.hpp"
#include "somp/runtime.hpp"
#include "telemetry/metrics.hpp"

namespace arcs::apex {

struct ApexOptions {
  /// Read the RAPL counter around each region (ignored on machines
  /// without energy counter access, e.g. Minotaur).
  bool sample_energy = true;
};

class Apex {
 public:
  /// Attaches to the runtime's OMPT tool registry. The runtime must
  /// outlive this object.
  explicit Apex(somp::Runtime& runtime, ApexOptions options = {});
  ~Apex();

  Apex(const Apex&) = delete;
  Apex& operator=(const Apex&) = delete;

  ProfileStore& profiles() { return profiles_; }
  const ProfileStore& profiles() const { return profiles_; }

  PolicyEngine& policies() { return policies_; }

  /// Convenience: total accumulated value of (task, metric), 0 if absent.
  double total(std::string_view task, Metric metric) const;

  /// User counters ("introspection from timers, counters, node- or
  /// machine-wide resource utilization data"): sample an arbitrary named
  /// value; statistics accumulate in a Profile keyed by the counter name.
  void sample_counter(std::string_view name, double value);
  const Profile* counter(std::string_view name) const;
  std::vector<std::string> counter_names() const;

  /// Number of region instances observed.
  std::uint64_t regions_observed() const { return regions_observed_; }

  /// Mirrors every user counter's latest statistics into named telemetry
  /// gauges ("apex/<counter>", mean over samples so far) — the bridge
  /// that absorbs apex counters into the shared metrics registry.
  void publish_counters(telemetry::MetricsRegistry& registry) const;

  somp::Runtime& runtime() { return runtime_; }

 private:
  void on_parallel_begin(const ompt::ParallelBeginRecord& r);
  void on_parallel_end(const ompt::ParallelEndRecord& r);
  void on_implicit_task(const ompt::ImplicitTaskRecord& r);
  void on_work_loop(const ompt::WorkLoopRecord& r);
  void on_sync_region(const ompt::SyncRegionRecord& r);

  somp::Runtime& runtime_;
  ApexOptions options_;
  std::size_t tool_handle_ = 0;
  bool energy_readable_ = false;

  ProfileStore profiles_;
  std::map<std::string, Profile, std::less<>> counters_;
  PolicyEngine policies_;
  std::uint64_t regions_observed_ = 0;

  /// Telemetry lane for this instance's timer spans (claimed lazily on
  /// the first region traced).
  std::uint32_t trace_lane_ = 0;
  bool trace_lane_claimed_ = false;

  /// In-flight region state (one per live parallel id).
  struct LiveRegion {
    std::string name;
    common::Seconds start_time = 0;
    std::uint32_t energy_raw_before = 0;
    double implicit_total = 0;
    double loop_total = 0;
    double barrier_total = 0;
  };
  std::map<ompt::ParallelId, LiveRegion> live_;

  /// Per (parallel id, thread) begin timestamps awaiting their end events.
  struct ThreadSpans {
    common::Seconds implicit_begin = 0;
    common::Seconds loop_begin = 0;
    common::Seconds barrier_begin = 0;
  };
  std::map<std::pair<ompt::ParallelId, int>, ThreadSpans> spans_;
};

}  // namespace arcs::apex
