// PredictiveModel — the subsystem facade.
//
// Owns both predictors (trained together on the same dataset; the
// configured kind answers queries), resolves HistoryKeys to signatures
// through a pluggable DescriptorResolver, and implements the
// arcs::ConfigPredictor seam that core::ArcsPolicy and serve::TuningServer
// consume. Persistence lives in store.hpp (ModelStore).
//
// Thread-safety: train()/set_resolver()/restore are setup-phase; after
// that every method is const and safe to call concurrently (serve does).
#pragma once

#include <optional>
#include <string>

#include "core/predictor.hpp"
#include "model/dataset.hpp"
#include "model/predictor.hpp"

namespace arcs::model {

enum class PredictorKind { Knn, Linear };

std::string_view to_string(PredictorKind kind);
/// Parses "knn|linear" (case-insensitive); throws on unknown input.
PredictorKind predictor_kind_from_string(std::string_view s);

struct ModelOptions {
  PredictorKind kind = PredictorKind::Knn;  ///< which predictor answers
  std::size_t knn_k = 5;
  double ridge = 1e-3;
};

class PredictiveModel final : public ConfigPredictor {
 public:
  explicit PredictiveModel(ModelOptions options = {});

  /// Fits both predictors from scratch. Throws on an empty dataset.
  void train(const Dataset& data);
  bool trained() const;

  const ModelOptions& options() const { return options_; }
  const KnnPredictor& knn() const { return knn_; }
  KnnPredictor& knn() { return knn_; }
  const LinearPredictor& linear() const { return linear_; }
  LinearPredictor& linear() { return linear_; }
  /// The predictor selected by options().kind.
  const Predictor& active() const;

  /// Direct query (signature already extracted).
  std::optional<somp::LoopConfig> predict(
      const Query& query, const harmony::SearchSpace& space) const;

  /// Attaches the resolver predict_config() uses to turn a HistoryKey
  /// into a signature + search space (kernels::model_resolver() for the
  /// built-in apps). Must itself be thread-safe.
  void set_resolver(DescriptorResolver resolver);
  bool has_resolver() const { return resolver_ != nullptr; }

  // arcs::ConfigPredictor
  std::optional<somp::LoopConfig> predict_config(
      const HistoryKey& key) const override;

  /// Persistence conveniences — see ModelStore for the format.
  std::string serialize() const;
  static PredictiveModel deserialize(const std::string& text);
  void save(const std::string& path) const;
  static PredictiveModel load(const std::string& path);

 private:
  ModelOptions options_;
  KnnPredictor knn_;
  LinearPredictor linear_;
  DescriptorResolver resolver_;
};

}  // namespace arcs::model
