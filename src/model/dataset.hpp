// Training data for the configuration predictor.
//
// One Example is one measured evaluation: "region×machine×cap signature S
// under configuration C took V seconds (E joules)". Examples sharing a
// HistoryKey form a *group* — all the candidates one search measured for
// one (app, machine, cap, workload, region); the group's minimum is the
// recorded exhaustive/searched best the regret methodology compares
// against.
//
// Two sources: HistoryStore v3 files (per-candidate sample lines) via a
// DescriptorResolver, and `--dataset` JSONL dumps (schema
// arcs-model-dataset/v1, one compact JSON row per evaluation).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/history.hpp"
#include "model/features.hpp"
#include "somp/schedule.hpp"

namespace arcs::model {

/// What a HistoryKey resolves to: the region's descriptor plus the
/// machine it ran on. kernels/model_bridge.hpp provides the concrete
/// resolver over the built-in app specs and machine presets.
struct ResolvedRegion {
  RegionDescriptor descriptor;
  sim::MachineSpec machine;
};

using DescriptorResolver =
    std::function<std::optional<ResolvedRegion>(const HistoryKey&)>;

struct Example {
  HistoryKey key;
  FeatureVector features;  ///< extract_features(descriptor, machine, cap)
  int hw_threads = 0;      ///< resolves config.num_threads == 0
  double iterations = 0.0; ///< resolves default static chunk
  somp::LoopConfig config;
  double value = 0.0;      ///< measured objective (seconds)
  double energy = 0.0;     ///< package energy (J); 0 when not recorded
};

class Dataset {
 public:
  void add(Example example);
  std::size_t size() const { return examples_.size(); }
  bool empty() const { return examples_.empty(); }
  const std::vector<Example>& examples() const { return examples_; }

  /// Example indices grouped by HistoryKey, in key order (deterministic).
  std::map<HistoryKey, std::vector<std::size_t>> groups() const;

  /// One arcs-model-dataset/v1 JSON row per example, newline-terminated.
  std::string to_jsonl() const;
  /// Parses to_jsonl() output (unknown fields ignored; rows with another
  /// schema tag are rejected). Throws common::ContractError on malformed
  /// rows.
  static Dataset from_jsonl(const std::string& text);

  /// Appends this dataset's rows to a JSONL file (creates it if absent).
  void append_jsonl(const std::string& path) const;
  static Dataset load_jsonl(const std::string& path);

 private:
  std::vector<Example> examples_;
};

/// Builds a dataset from a history store: every per-candidate sample
/// (HistoryStore v3), plus — for keys that have no samples, e.g. v1/v2
/// files — the best-entry itself as a single example. Keys the resolver
/// cannot resolve are skipped.
Dataset dataset_from_history(const HistoryStore& store,
                             const DescriptorResolver& resolver);

/// Machine preset lookup by name (crill, minotaur, haswell, testbox);
/// nullopt for anything else.
std::optional<sim::MachineSpec> preset_machine(const std::string& name);

}  // namespace arcs::model
