// k-fold cross-validation of a predictor against recorded search bests.
//
// Folds are assigned per GROUP (all of one region×machine×cap's
// measurements stay together — splitting a group would leak its optimum
// into training). Assignment is a pure hash of the group's HistoryKey —
// the repository's descriptor-seed rule — so the same dataset always
// produces the same folds on every platform, with no RNG and no
// dependence on insertion order.
//
// Regret for one held-out group: the model predicts a config from the
// other folds' data; the prediction is charged the group's *measured*
// value for that config (exact measurement if present, else the
// measurement whose config is closest in index space), and
//
//   regret = predicted_measured_value / group_best_value − 1
//
// i.e. 0.05 means the model's pick ran 5% slower than the recorded
// search best.
#pragma once

#include <cstdint>
#include <vector>

#include "model/dataset.hpp"
#include "model/model.hpp"

namespace arcs::model {

struct CrossValReport {
  std::size_t folds = 0;
  std::size_t groups = 0;     ///< total held-out groups
  std::size_t predicted = 0;  ///< groups the model produced a config for
  double mean_regret = 0.0;
  double median_regret = 0.0;
  double max_regret = 0.0;
  /// One regret per predicted group, in group (key) order.
  std::vector<double> regrets;
};

/// Deterministic fold index for a key (exposed for tests): a pure FNV-1a
/// hash of the key's fields, modulo `folds`.
std::size_t fold_for_key(const HistoryKey& key, std::size_t folds);

/// Trains `folds` models, each on the dataset minus one fold, and scores
/// the held-out groups. Groups whose fold ends up empty of training data
/// (or that the model declines to predict) count in `groups` but not
/// `predicted`. Requires folds >= 2 and a non-empty dataset.
CrossValReport cross_validate(const Dataset& data, const ModelOptions& options,
                              std::size_t folds = 5);

}  // namespace arcs::model
