#include "model/model.hpp"

#include "common/check.hpp"
#include "common/strings.hpp"
#include "core/search_space.hpp"
#include "model/store.hpp"

namespace arcs::model {

std::string_view to_string(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::Knn:
      return "knn";
    case PredictorKind::Linear:
      return "linear";
  }
  return "unknown";
}

PredictorKind predictor_kind_from_string(std::string_view s) {
  const std::string lower = common::to_lower(common::trim(s));
  if (lower == "knn") return PredictorKind::Knn;
  if (lower == "linear") return PredictorKind::Linear;
  ARCS_CHECK_MSG(false, "unknown predictor kind: " + lower);
  return PredictorKind::Knn;  // unreachable
}

PredictiveModel::PredictiveModel(ModelOptions options)
    : options_(options), knn_(options.knn_k), linear_(options.ridge) {}

void PredictiveModel::train(const Dataset& data) {
  knn_.fit(data);
  linear_.fit(data);
}

bool PredictiveModel::trained() const { return active().trained(); }

const Predictor& PredictiveModel::active() const {
  if (options_.kind == PredictorKind::Linear) return linear_;
  return knn_;
}

std::optional<somp::LoopConfig> PredictiveModel::predict(
    const Query& query, const harmony::SearchSpace& space) const {
  return active().predict(query, space);
}

void PredictiveModel::set_resolver(DescriptorResolver resolver) {
  resolver_ = std::move(resolver);
}

std::optional<somp::LoopConfig> PredictiveModel::predict_config(
    const HistoryKey& key) const {
  if (!resolver_ || !active().trained()) return std::nullopt;
  const auto resolved = resolver_(key);
  if (!resolved) return std::nullopt;
  Query query;
  query.features = extract_features(resolved->descriptor, resolved->machine,
                                    key.power_cap);
  query.hw_threads = resolved->machine.topology.hw_threads();
  query.iterations = resolved->descriptor.iterations;
  return predict(query, arcs_search_space(resolved->machine));
}

std::string PredictiveModel::serialize() const {
  return ModelStore::serialize(*this);
}

PredictiveModel PredictiveModel::deserialize(const std::string& text) {
  return ModelStore::deserialize(text);
}

void PredictiveModel::save(const std::string& path) const {
  ModelStore::save(*this, path);
}

PredictiveModel PredictiveModel::load(const std::string& path) {
  return ModelStore::load(path);
}

}  // namespace arcs::model
