#include "model/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "core/search_space.hpp"

namespace arcs::model {

namespace {

/// The configuration value a LoopConfig carries for a named search-space
/// dimension (mirrors core::config_from_values' encoding).
harmony::Value config_value_for(const somp::LoopConfig& config,
                                const std::string& dim_name) {
  if (dim_name == "threads")
    return static_cast<harmony::Value>(config.num_threads);
  if (dim_name == "schedule")
    return static_cast<harmony::Value>(config.schedule.kind);
  if (dim_name == "chunk")
    return static_cast<harmony::Value>(config.schedule.chunk);
  if (dim_name == "frequency_mhz")
    return static_cast<harmony::Value>(config.frequency_mhz);
  if (dim_name == "placement")
    return static_cast<harmony::Value>(config.placement);
  ARCS_CHECK_MSG(false, "unknown search dimension: " + dim_name);
  return 0;
}

/// Index of the candidate value closest to `v`: exact match first, then
/// nearest by absolute difference (ties break to the lower index, so
/// prediction order is stable across platforms).
std::size_t snap_to_dimension(const harmony::Dimension& dim,
                              harmony::Value v) {
  ARCS_CHECK(!dim.values.empty());
  std::size_t best = 0;
  long long best_delta = std::numeric_limits<long long>::max();
  for (std::size_t i = 0; i < dim.values.size(); ++i) {
    const long long delta = std::llabs(dim.values[i] - v);
    if (delta < best_delta) {
      best_delta = delta;
      best = i;
    }
    if (delta == 0) break;
  }
  return best;
}

int effective_threads(const somp::LoopConfig& config, int hw_threads) {
  return config.num_threads > 0 ? config.num_threads
                                : std::max(hw_threads, 1);
}

double effective_chunk(const somp::LoopConfig& config, double iterations,
                       int hw_threads) {
  if (config.schedule.chunk > 0)
    return static_cast<double>(config.schedule.chunk);
  // OpenMP defaults: dynamic/guided start from chunk 1; static splits the
  // trip count evenly across the team.
  if (config.schedule.kind == somp::ScheduleKind::Dynamic ||
      config.schedule.kind == somp::ScheduleKind::Guided)
    return 1.0;
  const double t = effective_threads(config, hw_threads);
  return std::max(iterations / std::max(t, 1.0), 1.0);
}

}  // namespace

harmony::Point snap_config(const harmony::SearchSpace& space,
                           const somp::LoopConfig& config) {
  harmony::Point p(space.num_dimensions(), 0);
  for (std::size_t d = 0; d < space.num_dimensions(); ++d) {
    const harmony::Dimension& dim = space.dimension(d);
    p[d] = snap_to_dimension(dim, config_value_for(config, dim.name));
  }
  // On a conditional space, collapse inactive coordinates so every
  // spelling of one configuration snaps to the same point (and thus the
  // same φ row / dataset key).
  return space.canonicalize(std::move(p));
}

// ---------------------------------------------------------------------------
// KnnPredictor

void KnnPredictor::fit(const Dataset& data) {
  ARCS_CHECK_MSG(!data.empty(), "cannot fit a predictor on no examples");
  neighbors_.clear();
  for (const auto& [key, indices] : data.groups()) {
    std::size_t best = indices.front();
    for (const std::size_t i : indices)
      if (data.examples()[i].value < data.examples()[best].value) best = i;
    const Example& e = data.examples()[best];
    neighbors_.push_back(
        {e.features, e.config, e.value, e.hw_threads, e.iterations});
  }
  std::vector<FeatureVector> signatures;
  signatures.reserve(neighbors_.size());
  for (const Neighbor& n : neighbors_) signatures.push_back(n.signature);
  normalizer_.fit(signatures);
}

std::optional<somp::LoopConfig> KnnPredictor::predict(
    const Query& query, const harmony::SearchSpace& space) const {
  if (!trained()) return std::nullopt;
  const FeatureVector z = normalizer_.apply(query.features);

  // (distance, neighbor index) sorted ascending; index tie-break keeps
  // the vote deterministic when distances collide.
  std::vector<std::pair<double, std::size_t>> order;
  order.reserve(neighbors_.size());
  for (std::size_t i = 0; i < neighbors_.size(); ++i)
    order.emplace_back(
        signature_distance(z, normalizer_.apply(neighbors_[i].signature)),
        i);
  std::sort(order.begin(), order.end());
  const std::size_t k = std::min(k_, order.size());

  harmony::Point point(space.num_dimensions(), 0);
  for (std::size_t d = 0; d < space.num_dimensions(); ++d) {
    const harmony::Dimension& dim = space.dimension(d);
    std::vector<double> votes(dim.values.size(), 0.0);
    for (std::size_t rank = 0; rank < k; ++rank) {
      const auto& [dist, idx] = order[rank];
      const harmony::Value v =
          config_value_for(neighbors_[idx].config, dim.name);
      votes[snap_to_dimension(dim, v)] += 1.0 / (dist + 1e-9);
    }
    std::size_t winner = 0;
    for (std::size_t i = 1; i < votes.size(); ++i)
      if (votes[i] > votes[winner]) winner = i;
    point[d] = winner;
  }
  return config_from_values(space.decode(point));
}

void KnnPredictor::restore(Normalizer normalizer,
                           std::vector<Neighbor> neighbors) {
  ARCS_CHECK_MSG(normalizer.fitted() && !neighbors.empty(),
                 "restoring an untrained kNN model");
  normalizer_ = std::move(normalizer);
  neighbors_ = std::move(neighbors);
}

// ---------------------------------------------------------------------------
// LinearPredictor

std::vector<double> LinearPredictor::phi(
    const Query& query, const somp::LoopConfig& config) const {
  ARCS_CHECK_MSG(normalizer_.fitted(), "φ needs a fitted normalizer");
  const FeatureVector z = normalizer_.apply(query.features);
  const double hw = std::max(query.hw_threads, 1);
  const double t = effective_threads(config, query.hw_threads);
  const double t_frac = t / hw;
  const double log_t = std::log2(t) / 5.0;
  const double is_dynamic =
      config.schedule.kind == somp::ScheduleKind::Dynamic ? 1.0 : 0.0;
  const double is_guided =
      config.schedule.kind == somp::ScheduleKind::Guided ? 1.0 : 0.0;
  const double chunk = effective_chunk(config, query.iterations,
                                       query.hw_threads);
  const double log_chunk = std::log2(chunk + 1.0) / 9.0;  // 512 → ~1
  const double inv_chunk = 1.0 / (1.0 + chunk);

  std::vector<double> p;
  p.reserve(kPhiCount);
  p.push_back(1.0);
  p.insert(p.end(), z.begin(), z.end());
  p.push_back(t_frac);
  p.push_back(log_t);
  p.push_back(is_dynamic);
  p.push_back(is_guided);
  p.push_back(log_chunk);
  p.push_back(inv_chunk);
  // Interactions the paper's analysis predicts matter: the best thread
  // count shifts with the cap and with memory pressure; dynamic/chunk
  // only pay off under imbalance; chunk trades against locality.
  p.push_back(t_frac * z[17]);       // threads × cap fraction
  p.push_back(t_frac * z[10]);       // threads × imbalance
  p.push_back(is_dynamic * z[10]);   // dynamic × imbalance
  p.push_back(log_chunk * z[4]);     // chunk × reuse window
  p.push_back(t_frac * z[8]);        // threads × L3 miss floor
  p.push_back(is_dynamic * log_chunk);
  ARCS_CHECK(p.size() == kPhiCount);
  return p;
}

void LinearPredictor::fit(const Dataset& data) {
  ARCS_CHECK_MSG(!data.empty(), "cannot fit a predictor on no examples");
  std::vector<FeatureVector> rows;
  rows.reserve(data.size());
  for (const Example& e : data.examples()) rows.push_back(e.features);
  normalizer_.fit(rows);
  ata_.assign(kPhiCount, std::vector<double>(kPhiCount, 0.0));
  atb_.assign(kPhiCount, 0.0);
  observed_ = 0;
  weights_.clear();
  for (const Example& e : data.examples())
    observe({e.features, e.hw_threads, e.iterations}, e.config, e.value);
  refit();
}

void LinearPredictor::observe(const Query& query,
                              const somp::LoopConfig& config, double value) {
  ARCS_CHECK_MSG(normalizer_.fitted(),
                 "observe() needs a prior fit() to set the normalizer");
  const std::vector<double> p = phi(query, config);
  const double y = std::log(std::max(value, 1e-12));
  for (std::size_t i = 0; i < kPhiCount; ++i) {
    for (std::size_t j = i; j < kPhiCount; ++j) ata_[i][j] += p[i] * p[j];
    atb_[i] += p[i] * y;
  }
  ++observed_;
}

void LinearPredictor::refit() {
  ARCS_CHECK_MSG(observed_ > 0, "refit() with no observations");
  // Solve (ΦᵀΦ + λI) w = Φᵀy by Gaussian elimination with partial
  // pivoting; the ridge term keeps the system full-rank for any sample
  // count.
  const std::size_t n = kPhiCount;
  std::vector<std::vector<double>> a(n, std::vector<double>(n + 1, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j)
      a[i][j] = i <= j ? ata_[i][j] : ata_[j][i];
    a[i][i] += ridge_;
    a[i][n] = atb_[i];
  }
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row)
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    std::swap(a[col], a[pivot]);
    ARCS_CHECK_MSG(std::fabs(a[col][col]) > 1e-30,
                   "singular normal equations despite ridge term");
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (std::size_t j = col; j <= n; ++j) a[row][j] -= factor * a[col][j];
    }
  }
  std::vector<double> w(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = a[i][n];
    for (std::size_t j = i + 1; j < n; ++j) sum -= a[i][j] * w[j];
    w[i] = sum / a[i][i];
  }
  weights_ = std::move(w);
}

std::optional<double> LinearPredictor::score(
    const Query& query, const somp::LoopConfig& config) const {
  if (!trained()) return std::nullopt;
  const std::vector<double> p = phi(query, config);
  double log_time = 0.0;
  for (std::size_t i = 0; i < kPhiCount; ++i)
    log_time += weights_[i] * p[i];
  return std::exp(log_time);
}

std::optional<somp::LoopConfig> LinearPredictor::predict(
    const Query& query, const harmony::SearchSpace& space) const {
  if (!trained()) return std::nullopt;
  // Rank the entire space; first point in enumeration order wins ties so
  // prediction is reproducible.
  harmony::Point p = space.origin();
  somp::LoopConfig best_config;
  double best_score = std::numeric_limits<double>::infinity();
  bool any = false;
  do {
    const somp::LoopConfig candidate = config_from_values(space.decode(p));
    const double s = *score(query, candidate);
    if (!any || s < best_score) {
      any = true;
      best_score = s;
      best_config = candidate;
    }
  } while (space.advance(p));
  if (!any) return std::nullopt;
  return best_config;
}

void LinearPredictor::restore(Normalizer normalizer,
                              std::vector<double> weights) {
  ARCS_CHECK_MSG(normalizer.fitted() && weights.size() == kPhiCount,
                 "restoring a malformed linear model");
  normalizer_ = std::move(normalizer);
  weights_ = std::move(weights);
  ata_.clear();
  atb_.clear();
  observed_ = 0;
}

}  // namespace arcs::model
