#include "model/store.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace arcs::model {

namespace {

std::string join_hex(const std::vector<double>& xs) {
  std::string out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ' ';
    out += hex_double(xs[i]);
  }
  return out;
}

std::vector<double> split_hex(const std::string& field,
                              std::size_t expected,
                              const std::string& what) {
  const auto parts = common::split(field, ' ');
  ARCS_CHECK_MSG(parts.size() == expected,
                 "model file " + what + " holds " +
                     std::to_string(parts.size()) + " values, expected " +
                     std::to_string(expected));
  std::vector<double> xs;
  xs.reserve(parts.size());
  for (const auto& p : parts) xs.push_back(parse_hex_double(p));
  return xs;
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ',';
    out += names[i];
  }
  return out;
}

}  // namespace

std::string hex_double(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", x);
  return buf;
}

double parse_hex_double(const std::string& s) {
  char* end = nullptr;
  const double x = std::strtod(s.c_str(), &end);
  ARCS_CHECK_MSG(end == s.c_str() + s.size() && !s.empty(),
                 "bad hexfloat in model file: " + s);
  return x;
}

std::string ModelStore::serialize(const PredictiveModel& model) {
  std::ostringstream os;
  os << "#%arcs-model v1\n";
  os << "kind|" << to_string(model.options().kind) << '\n';
  os << "knn_k|" << model.options().knn_k << '\n';
  os << "ridge|" << hex_double(model.options().ridge) << '\n';
  os << "features|" << kFeatureCount << '|' << join_names(feature_names())
     << '\n';
  if (model.knn().trained()) {
    os << "knn_mean|" << join_hex(model.knn().normalizer().mean) << '\n';
    os << "knn_std|" << join_hex(model.knn().normalizer().stddev) << '\n';
    os << "#%rows " << model.knn().neighbors().size() << '\n';
    for (const KnnPredictor::Neighbor& n : model.knn().neighbors()) {
      os << "row|" << n.config.to_string() << '|' << hex_double(n.best_value)
         << '|' << n.hw_threads << '|' << hex_double(n.iterations) << '|'
         << join_hex(n.signature) << '\n';
    }
  }
  if (model.linear().trained()) {
    os << "lin_mean|" << join_hex(model.linear().normalizer().mean) << '\n';
    os << "lin_std|" << join_hex(model.linear().normalizer().stddev) << '\n';
    os << "weights|" << join_hex(model.linear().weights()) << '\n';
  }
  os << "#%end\n";
  return os.str();
}

PredictiveModel ModelStore::deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string line;

  ModelOptions options;
  bool saw_header = false;
  bool saw_end = false;
  Normalizer knn_norm;
  std::vector<KnnPredictor::Neighbor> neighbors;
  bool expecting_rows = false;
  std::size_t expected_rows = 0;
  Normalizer lin_norm;
  std::vector<double> weights;

  while (std::getline(is, line)) {
    const auto trimmed = common::trim(line);
    if (trimmed.empty()) continue;
    if (common::starts_with(trimmed, "#%arcs-model")) {
      const auto fields = common::split(trimmed, ' ');
      ARCS_CHECK_MSG(fields.size() == 2 && fields[1] == "v1",
                     "unsupported model format: " + std::string(trimmed));
      saw_header = true;
      continue;
    }
    if (common::starts_with(trimmed, "#%rows")) {
      const auto fields = common::split(trimmed, ' ');
      ARCS_CHECK_MSG(fields.size() == 2,
                     "malformed model rows marker: " + std::string(trimmed));
      expected_rows = static_cast<std::size_t>(std::stoull(fields[1]));
      expecting_rows = true;
      continue;
    }
    if (trimmed == "#%end") {
      saw_end = true;
      continue;
    }
    if (trimmed.front() == '#') continue;
    ARCS_CHECK_MSG(saw_header, "model file is missing its version header");
    const auto fields = common::split(trimmed, '|');
    const std::string& tag = fields[0];
    if (tag == "kind") {
      ARCS_CHECK_MSG(fields.size() == 2, "malformed kind line");
      options.kind = predictor_kind_from_string(fields[1]);
    } else if (tag == "knn_k") {
      ARCS_CHECK_MSG(fields.size() == 2, "malformed knn_k line");
      options.knn_k = static_cast<std::size_t>(std::stoull(fields[1]));
    } else if (tag == "ridge") {
      ARCS_CHECK_MSG(fields.size() == 2, "malformed ridge line");
      options.ridge = parse_hex_double(fields[1]);
    } else if (tag == "features") {
      ARCS_CHECK_MSG(fields.size() == 3, "malformed features line");
      ARCS_CHECK_MSG(std::stoull(fields[1]) == kFeatureCount &&
                         fields[2] == join_names(feature_names()),
                     "model file was trained with a different feature "
                     "schema than this build");
    } else if (tag == "knn_mean") {
      ARCS_CHECK_MSG(fields.size() == 2, "malformed knn_mean line");
      knn_norm.mean = split_hex(fields[1], kFeatureCount, "knn_mean");
    } else if (tag == "knn_std") {
      ARCS_CHECK_MSG(fields.size() == 2, "malformed knn_std line");
      knn_norm.stddev = split_hex(fields[1], kFeatureCount, "knn_std");
    } else if (tag == "row") {
      ARCS_CHECK_MSG(fields.size() == 6,
                     "model row needs 6 fields: " + std::string(trimmed));
      KnnPredictor::Neighbor n;
      n.config = somp::LoopConfig::from_string(fields[1]);
      n.best_value = parse_hex_double(fields[2]);
      n.hw_threads = static_cast<int>(std::stol(fields[3]));
      n.iterations = parse_hex_double(fields[4]);
      n.signature = split_hex(fields[5], kFeatureCount, "row signature");
      neighbors.push_back(std::move(n));
    } else if (tag == "lin_mean") {
      ARCS_CHECK_MSG(fields.size() == 2, "malformed lin_mean line");
      lin_norm.mean = split_hex(fields[1], kFeatureCount, "lin_mean");
    } else if (tag == "lin_std") {
      ARCS_CHECK_MSG(fields.size() == 2, "malformed lin_std line");
      lin_norm.stddev = split_hex(fields[1], kFeatureCount, "lin_std");
    } else if (tag == "weights") {
      ARCS_CHECK_MSG(fields.size() == 2, "malformed weights line");
      weights = split_hex(fields[1], kPhiCount, "weights");
    } else {
      ARCS_CHECK_MSG(false, "unknown model line: " + std::string(trimmed));
    }
  }
  ARCS_CHECK_MSG(saw_header, "model file is missing its version header");
  ARCS_CHECK_MSG(saw_end,
                 "model file is missing its #%end footer (truncated file?)");
  if (expecting_rows)
    ARCS_CHECK_MSG(neighbors.size() == expected_rows,
                   "model file is torn: promises " +
                       std::to_string(expected_rows) + " rows, found " +
                       std::to_string(neighbors.size()));

  PredictiveModel model(options);
  if (!neighbors.empty()) model.knn().restore(knn_norm, std::move(neighbors));
  if (!weights.empty()) model.linear().restore(lin_norm, std::move(weights));
  return model;
}

void ModelStore::save(const PredictiveModel& model, const std::string& path) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp);
    ARCS_CHECK_MSG(out.good(), "cannot open model file for write: " + tmp);
    out << serialize(model);
    out.flush();
    ARCS_CHECK_MSG(out.good(), "failed writing model file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    ARCS_CHECK_MSG(false, "cannot rename model file into place: " + path);
  }
}

PredictiveModel ModelStore::load(const std::string& path) {
  std::ifstream in(path);
  ARCS_CHECK_MSG(in.good(), "cannot open model file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return deserialize(buffer.str());
}

}  // namespace arcs::model
