#include "model/dataset.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
#include "sim/presets.hpp"

namespace arcs::model {

namespace {

constexpr std::string_view kSchema = "arcs-model-dataset/v1";

double num_field(const common::Json& row, const std::string& key) {
  const common::Json* member = row.find(key);
  ARCS_CHECK_MSG(member != nullptr && member->is_number(),
                 "dataset row missing numeric field: " + key);
  return member->as_number();
}

std::string str_field(const common::Json& row, const std::string& key) {
  const common::Json* member = row.find(key);
  ARCS_CHECK_MSG(member != nullptr && member->is_string(),
                 "dataset row missing string field: " + key);
  return member->as_string();
}

}  // namespace

void Dataset::add(Example example) {
  ARCS_CHECK_MSG(example.features.size() == kFeatureCount,
                 "dataset example has a wrong-sized feature vector");
  examples_.push_back(std::move(example));
}

std::map<HistoryKey, std::vector<std::size_t>> Dataset::groups() const {
  std::map<HistoryKey, std::vector<std::size_t>> by_key;
  for (std::size_t i = 0; i < examples_.size(); ++i)
    by_key[examples_[i].key].push_back(i);
  return by_key;
}

std::string Dataset::to_jsonl() const {
  std::string out;
  for (const Example& e : examples_) {
    common::Json row = common::Json::object();
    row.set("schema", std::string(kSchema));
    row.set("app", e.key.app);
    row.set("machine", e.key.machine);
    row.set("cap_w", e.key.power_cap);
    row.set("workload", e.key.workload);
    row.set("region", e.key.region);
    row.set("config", e.config.to_string());
    row.set("value_s", e.value);
    row.set("energy_j", e.energy);
    row.set("hw_threads", e.hw_threads);
    row.set("iterations", e.iterations);
    common::Json features = common::Json::array();
    for (const double f : e.features) features.push_back(f);
    row.set("features", std::move(features));
    out += row.dump(0);
    out += '\n';
  }
  return out;
}

Dataset Dataset::from_jsonl(const std::string& text) {
  Dataset data;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto trimmed = common::trim(line);
    if (trimmed.empty()) continue;
    std::string error;
    const common::Json row = common::Json::parse(std::string(trimmed),
                                                 &error);
    ARCS_CHECK_MSG(row.is_object(), "malformed dataset row: " + error);
    ARCS_CHECK_MSG(str_field(row, "schema") == kSchema,
                   "dataset row has an unsupported schema tag");
    Example e;
    e.key.app = str_field(row, "app");
    e.key.machine = str_field(row, "machine");
    e.key.power_cap = num_field(row, "cap_w");
    e.key.workload = str_field(row, "workload");
    e.key.region = str_field(row, "region");
    e.config = somp::LoopConfig::from_string(str_field(row, "config"));
    e.value = num_field(row, "value_s");
    e.energy = num_field(row, "energy_j");
    e.hw_threads = static_cast<int>(num_field(row, "hw_threads"));
    e.iterations = num_field(row, "iterations");
    const common::Json* features = row.find("features");
    ARCS_CHECK_MSG(features != nullptr && features->is_array() &&
                       features->size() == kFeatureCount,
                   "dataset row has a malformed feature array");
    for (const common::Json& f : features->items()) {
      ARCS_CHECK_MSG(f.is_number(), "dataset feature is not a number");
      e.features.push_back(f.as_number());
    }
    data.add(std::move(e));
  }
  return data;
}

void Dataset::append_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::app);
  ARCS_CHECK_MSG(out.good(), "cannot open dataset file for append: " + path);
  out << to_jsonl();
  out.flush();
  ARCS_CHECK_MSG(out.good(), "failed writing dataset file: " + path);
}

Dataset Dataset::load_jsonl(const std::string& path) {
  std::ifstream in(path);
  ARCS_CHECK_MSG(in.good(), "cannot open dataset file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_jsonl(buffer.str());
}

Dataset dataset_from_history(const HistoryStore& store,
                             const DescriptorResolver& resolver) {
  ARCS_CHECK_MSG(resolver != nullptr,
                 "dataset_from_history needs a resolver");
  Dataset data;
  auto make_example = [&](const HistoryKey& key,
                          const somp::LoopConfig& config, double value,
                          double energy) -> bool {
    const auto resolved = resolver(key);
    if (!resolved) return false;
    Example e;
    e.key = key;
    e.features = extract_features(resolved->descriptor, resolved->machine,
                                  key.power_cap);
    e.hw_threads = resolved->machine.topology.hw_threads();
    e.iterations = resolved->descriptor.iterations;
    e.config = config;
    e.value = value;
    e.energy = energy;
    data.add(std::move(e));
    return true;
  };
  std::map<HistoryKey, bool> has_samples;
  for (const HistorySample& s : store.samples())
    if (make_example(s.key, s.config, s.value, s.energy))
      has_samples[s.key] = true;
  // v1/v2 files carry only the winners; a best-only example is still a
  // usable (if lone) training point for its group.
  for (const auto& [key, entry] : store.entries())
    if (!has_samples.count(key))
      make_example(key, entry.config, entry.best_value, 0.0);
  return data;
}

std::optional<sim::MachineSpec> preset_machine(const std::string& name) {
  for (const auto& spec :
       {sim::crill(), sim::minotaur(), sim::haswell(), sim::testbox()})
    if (spec.name == name) return spec;
  return std::nullopt;
}

}  // namespace arcs::model
