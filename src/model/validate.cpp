#include "model/validate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/check.hpp"
#include "core/search_space.hpp"

namespace arcs::model {

namespace {

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= 0xff;  // field separator so ("ab","c") != ("a","bc")
  h *= 0x100000001b3ULL;
  return h;
}

/// L1 distance between two configs after snapping both into the space.
std::size_t index_distance(const harmony::SearchSpace& space,
                           const harmony::Point& a,
                           const somp::LoopConfig& b) {
  const harmony::Point pb = snap_config(space, b);
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    d += a[i] > pb[i] ? a[i] - pb[i] : pb[i] - a[i];
  return d;
}

}  // namespace

std::size_t fold_for_key(const HistoryKey& key, std::size_t folds) {
  ARCS_CHECK_MSG(folds >= 2, "cross-validation needs at least two folds");
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, key.app);
  h = fnv1a(h, key.machine);
  // 1dp, matching the history format's cap resolution, so 55 and 55.0
  // land in the same fold.
  h = fnv1a(h, std::to_string(std::llround(key.power_cap * 10.0)));
  h = fnv1a(h, key.workload);
  h = fnv1a(h, key.region);
  return static_cast<std::size_t>(h % folds);
}

CrossValReport cross_validate(const Dataset& data,
                              const ModelOptions& options,
                              std::size_t folds) {
  ARCS_CHECK_MSG(!data.empty(), "cannot cross-validate an empty dataset");
  ARCS_CHECK_MSG(folds >= 2, "cross-validation needs at least two folds");

  const auto groups = data.groups();
  CrossValReport report;
  report.folds = folds;
  report.groups = groups.size();

  for (std::size_t fold = 0; fold < folds; ++fold) {
    Dataset train;
    for (const auto& [key, indices] : groups) {
      if (fold_for_key(key, folds) == fold) continue;
      for (const std::size_t i : indices) train.add(data.examples()[i]);
    }
    if (train.empty()) continue;  // everything hashed into this fold
    PredictiveModel model(options);
    model.train(train);

    for (const auto& [key, indices] : groups) {
      if (fold_for_key(key, folds) != fold) continue;
      const auto machine = preset_machine(key.machine);
      if (!machine) continue;
      const Example& probe = data.examples()[indices.front()];
      const harmony::SearchSpace space = arcs_search_space(*machine);
      const auto predicted = model.predict(
          {probe.features, probe.hw_threads, probe.iterations}, space);
      if (!predicted) continue;

      // Charge the prediction the group's measured value for the nearest
      // measured config; regret is relative to the group's best.
      const harmony::Point snapped = snap_config(space, *predicted);
      double best = data.examples()[indices.front()].value;
      double charged = 0.0;
      std::size_t charged_distance = 0;
      bool have_charge = false;
      for (const std::size_t i : indices) {
        const Example& e = data.examples()[i];
        best = std::min(best, e.value);
        const std::size_t dist = index_distance(space, snapped, e.config);
        if (!have_charge || dist < charged_distance ||
            (dist == charged_distance && e.value < charged)) {
          have_charge = true;
          charged = e.value;
          charged_distance = dist;
        }
      }
      if (!have_charge || best <= 0.0) continue;
      report.regrets.push_back(charged / best - 1.0);
      ++report.predicted;
    }
  }

  if (!report.regrets.empty()) {
    std::vector<double> sorted = report.regrets;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (const double r : sorted) sum += r;
    report.mean_regret = sum / static_cast<double>(sorted.size());
    const std::size_t mid = sorted.size() / 2;
    report.median_regret = sorted.size() % 2 == 1
                               ? sorted[mid]
                               : 0.5 * (sorted[mid - 1] + sorted[mid]);
    report.max_regret = sorted.back();
  }
  return report;
}

}  // namespace arcs::model
