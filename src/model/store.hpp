// ModelStore — versioned text persistence for trained models.
//
// Format (arcs-model v1), mirroring HistoryStore's conventions: a
// `#%arcs-model v1` version line, pipe-separated fields, hexfloat (%a)
// doubles so serialize→deserialize→serialize is bit-identical, section
// counts (`#%rows N`) plus a `#%end` footer so torn files are rejected,
// and atomic save via sibling-temp-file + rename.
//
//   #%arcs-model v1
//   kind|knn
//   knn_k|5
//   ridge|0x1.0c6f7a0b5ed8dp-10
//   features|18|log_iterations,log_cycles_per_iter,...
//   knn_mean|<18 hexfloats>          ┐ present only when the kNN
//   knn_std|<18 hexfloats>           │ predictor is trained
//   #%rows 12                        │
//   row|<config>|<best>|<hw>|<iters>|<18 hexfloats>   (× 12)
//   lin_mean|<18 hexfloats>          ┐ present only when the linear
//   lin_std|<18 hexfloats>           │ predictor is trained
//   weights|<kPhiCount hexfloats>    ┘
//   #%end
#pragma once

#include <string>

#include "model/model.hpp"

namespace arcs::model {

class ModelStore {
 public:
  static std::string serialize(const PredictiveModel& model);

  /// Parses serialize() output. Throws common::ContractError on a
  /// malformed/torn file, an unsupported version, or a feature-schema
  /// mismatch with this build.
  static PredictiveModel deserialize(const std::string& text);

  /// Atomic: writes a sibling temp file and renames it over `path`.
  static void save(const PredictiveModel& model, const std::string& path);
  static PredictiveModel load(const std::string& path);
};

/// Hexfloat (%a) round-trip helpers, exposed for tests.
std::string hex_double(double x);
double parse_hex_double(const std::string& s);

}  // namespace arcs::model
