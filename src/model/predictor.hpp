// Learned configuration predictors.
//
// Two models behind one interface, per the two natural framings of the
// problem:
//
//  * KnnPredictor — a *recommender*. Each training group (one region ×
//    machine × cap) collapses to its best measured configuration; a query
//    is answered by the k nearest signatures voting, distance-weighted,
//    per search-space dimension. Cheap, needs no per-candidate data, and
//    inherits the paper's observation that similar regions under similar
//    caps share optima.
//
//  * LinearPredictor — a *performance model*. Incremental ridge
//    regression on log(time) over signature × configuration features
//    (plus hand-picked interactions like threads×cap and
//    dynamic×imbalance), so it can score ANY candidate and rank the full
//    Table-I space, including configurations never measured for any
//    neighbor.
//
// Both are deterministic: same training data, same prediction.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "harmony/space.hpp"
#include "model/dataset.hpp"
#include "model/features.hpp"
#include "somp/schedule.hpp"

namespace arcs::model {

/// What a prediction is asked about: the region×machine×cap signature
/// plus the two machine/region facts needed to interpret "default"
/// configuration values (threads 0 → hw_threads, static chunk 0 →
/// iterations/threads).
struct Query {
  FeatureVector features;
  int hw_threads = 1;
  double iterations = 0.0;
};

class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Trains from scratch on a dataset. Throws on an empty dataset.
  virtual void fit(const Dataset& data) = 0;
  virtual bool trained() const = 0;

  /// Best configuration for the query, restricted to `space`'s candidate
  /// values. nullopt when untrained.
  virtual std::optional<somp::LoopConfig> predict(
      const Query& query, const harmony::SearchSpace& space) const = 0;

  /// Predicted objective (seconds, lower is better) for one candidate.
  /// nullopt when the model cannot score configs (kNN) or is untrained.
  virtual std::optional<double> score(const Query& query,
                                      const somp::LoopConfig& config) const {
    (void)query;
    (void)config;
    return std::nullopt;
  }

  virtual std::string name() const = 0;
};

/// Number of φ features the linear model regresses over:
/// bias + signature + config terms + interactions.
inline constexpr std::size_t kPhiCount = 1 + kFeatureCount + 6 + 6;

/// Index vector of the candidate values nearest to `config`, one per
/// space dimension (exact match first, then nearest by absolute value,
/// ties to the lower index), canonicalized — on a conditional space
/// inactive coordinates collapse, so every spelling of a configuration
/// snaps to one point. The discretization both the kNN vote and the
/// cross-validation regret charge live in.
harmony::Point snap_config(const harmony::SearchSpace& space,
                           const somp::LoopConfig& config);

class KnnPredictor final : public Predictor {
 public:
  /// One training group's distilled row.
  struct Neighbor {
    FeatureVector signature;  ///< raw (unnormalized) features
    somp::LoopConfig config;  ///< the group's best measured config
    double best_value = 0.0;
    int hw_threads = 1;
    double iterations = 0.0;
  };

  explicit KnnPredictor(std::size_t k = 5) : k_(k) {}

  void fit(const Dataset& data) override;
  bool trained() const override { return !neighbors_.empty(); }
  std::optional<somp::LoopConfig> predict(
      const Query& query, const harmony::SearchSpace& space) const override;
  std::string name() const override { return "knn"; }

  std::size_t k() const { return k_; }
  const Normalizer& normalizer() const { return normalizer_; }
  const std::vector<Neighbor>& neighbors() const { return neighbors_; }
  /// Restores a trained state loaded from a ModelStore file.
  void restore(Normalizer normalizer, std::vector<Neighbor> neighbors);

 private:
  std::size_t k_;
  Normalizer normalizer_;
  std::vector<Neighbor> neighbors_;
};

class LinearPredictor final : public Predictor {
 public:
  explicit LinearPredictor(double ridge = 1e-3) : ridge_(ridge) {}

  void fit(const Dataset& data) override;
  bool trained() const override { return !weights_.empty(); }
  std::optional<somp::LoopConfig> predict(
      const Query& query, const harmony::SearchSpace& space) const override;
  std::optional<double> score(const Query& query,
                              const somp::LoopConfig& config) const override;
  std::string name() const override { return "linear"; }

  /// Incremental API: fold one more measurement into the normal
  /// equations (requires a prior fit(), which sets the normalizer), then
  /// refit() to refresh the weights. fit() == observe-all + refit().
  void observe(const Query& query, const somp::LoopConfig& config,
               double value);
  void refit();

  double ridge() const { return ridge_; }
  const Normalizer& normalizer() const { return normalizer_; }
  const std::vector<double>& weights() const { return weights_; }
  /// Restores a trained state loaded from a ModelStore file. A restored
  /// model predicts/scores; continuing observe() needs a fresh fit().
  void restore(Normalizer normalizer, std::vector<double> weights);

  /// The φ feature map (exposed for tests): bias, normalized signature,
  /// configuration terms, interactions. Size kPhiCount.
  std::vector<double> phi(const Query& query,
                          const somp::LoopConfig& config) const;

 private:
  double ridge_;
  Normalizer normalizer_;
  std::vector<double> weights_;           ///< empty until trained
  std::vector<std::vector<double>> ata_;  ///< ΦᵀΦ accumulator
  std::vector<double> atb_;               ///< Φᵀy accumulator
  std::size_t observed_ = 0;
};

}  // namespace arcs::model
