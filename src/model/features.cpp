#include "model/features.hpp"

#include <cmath>

#include "common/check.hpp"

namespace arcs::model {

namespace {

double log10_floor(double x, double floor) {
  return std::log10(std::max(x, floor));
}

}  // namespace

const std::vector<std::string>& feature_names() {
  static const std::vector<std::string> kNames = {
      "log_iterations",      // 0
      "log_cycles_per_iter", // 1
      "log_footprint",       // 2: bytes_per_iter * iterations
      "log_bytes_per_cycle", // 3: memory/compute character
      "log_reuse_window",    // 4
      "stride_factor",       // 5
      "base_miss_l1",        // 6
      "base_miss_l2",        // 7
      "base_miss_l3",        // 8
      "mlp",                 // 9
      "imbalance",           // 10
      "has_reduction",       // 11
      "log2_hw_threads",     // 12
      "smt_per_core",        // 13
      "sockets",             // 14
      "log_l3_per_thread",   // 15
      "log_bw_per_thread",   // 16
      "cap_fraction",        // 17
  };
  return kNames;
}

FeatureVector extract_features(const RegionDescriptor& region,
                               const sim::MachineSpec& machine,
                               double power_cap) {
  const double iters = std::max(region.iterations, 1.0);
  const double cycles = std::max(region.cycles_per_iter, 1.0);
  const double access = region.access_bytes_per_iter > 0
                            ? region.access_bytes_per_iter
                            : region.bytes_per_iter;
  const int hw = std::max(machine.topology.hw_threads(), 1);
  const double l3 = std::max(machine.caches.l3.capacity, 1.0);
  const double bw_bytes =
      std::max(machine.caches.dram_bandwidth_gbs, 1e-3) * 1e9 *
      static_cast<double>(std::max(machine.topology.sockets, 1));

  FeatureVector f(kFeatureCount, 0.0);
  f[0] = log10_floor(iters, 1.0);
  f[1] = log10_floor(cycles, 1.0);
  f[2] = log10_floor(region.bytes_per_iter * iters, 1.0);
  f[3] = log10_floor(access / cycles, 1e-6);
  f[4] = log10_floor(region.reuse_window, 1.0);
  f[5] = region.stride_factor;
  f[6] = region.base_miss_l1;
  f[7] = region.base_miss_l2;
  f[8] = region.base_miss_l3;
  f[9] = region.mlp;
  f[10] = region.imbalance;
  f[11] = region.has_reduction ? 1.0 : 0.0;
  f[12] = std::log2(static_cast<double>(hw));
  f[13] = static_cast<double>(machine.topology.smt_per_core);
  f[14] = static_cast<double>(machine.topology.sockets);
  f[15] = log10_floor(l3 / static_cast<double>(hw), 1.0);
  f[16] = log10_floor(bw_bytes / static_cast<double>(hw), 1.0);
  f[17] = power_cap > 0.0 && machine.tdp > 0.0
              ? power_cap / machine.tdp
              : 1.0;
  return f;
}

void Normalizer::fit(const std::vector<FeatureVector>& rows) {
  ARCS_CHECK_MSG(!rows.empty(), "cannot fit a normalizer on no rows");
  const std::size_t d = rows.front().size();
  mean.assign(d, 0.0);
  stddev.assign(d, 0.0);
  for (const auto& row : rows) {
    ARCS_CHECK(row.size() == d);
    for (std::size_t i = 0; i < d; ++i) mean[i] += row[i];
  }
  const double n = static_cast<double>(rows.size());
  for (std::size_t i = 0; i < d; ++i) mean[i] /= n;
  for (const auto& row : rows)
    for (std::size_t i = 0; i < d; ++i) {
      const double dx = row[i] - mean[i];
      stddev[i] += dx * dx;
    }
  for (std::size_t i = 0; i < d; ++i) {
    stddev[i] = std::sqrt(stddev[i] / n);
    if (stddev[i] < 1e-12) stddev[i] = 1.0;  // constant dim: pass through
  }
}

FeatureVector Normalizer::apply(const FeatureVector& x) const {
  ARCS_CHECK_MSG(fitted(), "normalizer not fitted");
  ARCS_CHECK(x.size() == mean.size());
  FeatureVector z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    z[i] = (x[i] - mean[i]) / stddev[i];
  return z;
}

double signature_distance(const FeatureVector& a, const FeatureVector& b) {
  ARCS_CHECK(a.size() == b.size() && !a.empty());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

}  // namespace arcs::model
