// Feature extraction for the learned configuration predictor.
//
// A (region, machine, power cap) triple is turned into a fixed-length
// numeric signature. The schema deliberately mirrors what the paper's
// analysis says drives the optimum: trip count and per-iteration cost
// (how much work a team amortizes its fork/join over), memory-vs-compute
// character (the cache/bandwidth regime behind low-thread-count optima),
// load imbalance (what dynamic scheduling buys), machine topology, and
// the cap as a fraction of TDP (the paper's per-power-level optima).
//
// Everything here is config-independent: the same signature describes a
// region×cap no matter which {threads, schedule, chunk} is being scored.
#pragma once

#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace arcs::model {

/// Config-independent description of one parallel region — the model-layer
/// mirror of kernels::RegionSpec, kept free of a kernels dependency so the
/// model library stays below kernels in the stack (kernels provides the
/// adapter, see kernels/model_bridge.hpp).
struct RegionDescriptor {
  double iterations = 0.0;
  double cycles_per_iter = 0.0;
  /// Unique bytes resident per iteration (capacity pressure).
  double bytes_per_iter = 0.0;
  /// Cache-access volume per iteration; 0 = same as bytes_per_iter.
  double access_bytes_per_iter = 0.0;
  double reuse_window = 1.0;
  double stride_factor = 1.0;
  double base_miss_l1 = 0.0;
  double base_miss_l2 = 0.0;
  double base_miss_l3 = 0.0;
  double mlp = 1.0;
  /// Imbalance-shape strength (kernels::ImbalanceSpec::magnitude; 0 for
  /// a uniform region).
  double imbalance = 0.0;
  bool has_reduction = false;
};

using FeatureVector = std::vector<double>;

/// Number of features in the schema (== feature_names().size()).
inline constexpr std::size_t kFeatureCount = 18;

/// Stable, ordered feature names — persisted in ModelStore files so a
/// loaded model can reject a schema mismatch.
const std::vector<std::string>& feature_names();

/// Extracts the signature. `power_cap` in watts; 0 = uncapped (TDP).
FeatureVector extract_features(const RegionDescriptor& region,
                               const sim::MachineSpec& machine,
                               double power_cap);

/// Z-score normalization statistics fit on a training set. Dimensions
/// with zero variance keep stddev 1 so they pass through unscaled.
struct Normalizer {
  FeatureVector mean;
  FeatureVector stddev;

  void fit(const std::vector<FeatureVector>& rows);
  FeatureVector apply(const FeatureVector& x) const;
  bool fitted() const { return !mean.empty(); }
};

/// Root-mean-square distance between two (normalized) signatures.
double signature_distance(const FeatureVector& a, const FeatureVector& b);

}  // namespace arcs::model
