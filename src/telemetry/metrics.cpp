#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace arcs::telemetry {

namespace {

/// Precomputed upper bounds kLowestBound * 2^i.
const std::array<double, Histogram::kBuckets>& bucket_bounds() {
  static const std::array<double, Histogram::kBuckets> bounds = [] {
    std::array<double, Histogram::kBuckets> b{};
    double bound = Histogram::kLowestBound;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      b[i] = bound;
      bound *= 2.0;
    }
    return b;
  }();
  return bounds;
}

std::string sanitize_metric_name(const std::string& name) {
  std::string out = "arcs_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Short round-trippable number for exposition ("0.001048576", "+Inf").
std::string format_number(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

void Histogram::observe(double v) {
  const auto& bounds = bucket_bounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  const auto index = static_cast<std::size_t>(it - bounds.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::bucket_upper_bound(std::size_t i) {
  if (i >= kBuckets) return std::numeric_limits<double>::infinity();
  return bucket_bounds()[i];
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= kBuckets; ++i) {
    cumulative += bucket_count(i);
    if (cumulative >= rank && cumulative > 0)
      return bucket_upper_bound(i);
  }
  return bucket_upper_bound(kBuckets);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<analysis::Mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<analysis::Mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<analysis::Mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

common::Json MetricsRegistry::json_snapshot() const {
  std::lock_guard<analysis::Mutex> lock(mu_);
  common::Json root = common::Json::object();
  common::Json counters = common::Json::object();
  for (const auto& [name, counter] : counters_)
    counters.set(name, counter->load());
  root.set("counters", std::move(counters));
  common::Json gauges = common::Json::object();
  for (const auto& [name, gauge] : gauges_) gauges.set(name, gauge->load());
  root.set("gauges", std::move(gauges));
  common::Json histograms = common::Json::object();
  for (const auto& [name, histogram] : histograms_) {
    common::Json h = common::Json::object();
    h.set("count", histogram->count());
    h.set("sum", histogram->sum());
    h.set("p50", histogram->quantile(0.50));
    h.set("p95", histogram->quantile(0.95));
    h.set("p99", histogram->quantile(0.99));
    histograms.set(name, std::move(h));
  }
  root.set("histograms", std::move(histograms));
  return root;
}

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard<analysis::Mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    const std::string metric = sanitize_metric_name(name);
    os << "# TYPE " << metric << " counter\n";
    os << metric << " " << counter->load() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string metric = sanitize_metric_name(name);
    os << "# TYPE " << metric << " gauge\n";
    os << metric << " " << format_number(gauge->load()) << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string metric = sanitize_metric_name(name);
    os << "# TYPE " << metric << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
      const std::uint64_t in_bucket = histogram->bucket_count(i);
      cumulative += in_bucket;
      // Keep the exposition short: only emit a bucket line when the
      // cumulative count changed (plus the mandatory +Inf line).
      if (in_bucket == 0 && i != Histogram::kBuckets) continue;
      os << metric << "_bucket{le=\""
         << format_number(Histogram::bucket_upper_bound(i)) << "\"} "
         << cumulative << "\n";
    }
    os << metric << "_sum " << format_number(histogram->sum()) << "\n";
    os << metric << "_count " << histogram->count() << "\n";
  }
  return os.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace arcs::telemetry
