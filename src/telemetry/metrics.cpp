#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace arcs::telemetry {

namespace {

/// Precomputed upper bounds kLowestBound * 2^i.
const std::array<double, Histogram::kBuckets>& bucket_bounds() {
  static const std::array<double, Histogram::kBuckets> bounds = [] {
    std::array<double, Histogram::kBuckets> b{};
    double bound = Histogram::kLowestBound;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      b[i] = bound;
      bound *= 2.0;
    }
    return b;
  }();
  return bounds;
}

std::string sanitize_metric_name(const std::string& name) {
  std::string out = "arcs_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Short round-trippable number for exposition ("0.001048576", "+Inf").
std::string format_number(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

void Histogram::observe(double v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::size_t Histogram::bucket_index(double v) {
  const auto& bounds = bucket_bounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  return static_cast<std::size_t>(it - bounds.begin());
}

double Histogram::bucket_upper_bound(std::size_t i) {
  if (i >= kBuckets) return std::numeric_limits<double>::infinity();
  return bucket_bounds()[i];
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i <= kBuckets; ++i)
    snap.buckets[i] = bucket_count(i);
  snap.count = count();
  snap.sum = sum();
  return snap;
}

double Histogram::quantile(double q) const { return snapshot().quantile(q); }

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank && cumulative > 0)
      return Histogram::bucket_upper_bound(i);
  }
  return Histogram::bucket_upper_bound(Histogram::kBuckets);
}

HistogramSnapshot HistogramSnapshot::delta_since(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot delta;
  for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
    const std::uint64_t d =
        buckets[i] >= earlier.buckets[i] ? buckets[i] - earlier.buckets[i] : 0;
    delta.buckets[i] = d;
    delta.count += d;
  }
  delta.sum = sum >= earlier.sum ? sum - earlier.sum : 0;
  return delta;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i <= Histogram::kBuckets; ++i)
    buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
}

common::Json HistogramSnapshot::to_json() const {
  common::Json json = common::Json::object();
  json.set("count", count);
  json.set("sum", sum);
  common::Json sparse = common::Json::array();
  for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    common::Json pair = common::Json::array();
    pair.push_back(static_cast<std::uint64_t>(i));
    pair.push_back(buckets[i]);
    sparse.push_back(std::move(pair));
  }
  json.set("buckets", std::move(sparse));
  return json;
}

bool HistogramSnapshot::from_json(const common::Json& json,
                                  HistogramSnapshot* out) {
  if (!json.is_object()) return false;
  const common::Json* count = json.find("count");
  const common::Json* sum = json.find("sum");
  const common::Json* sparse = json.find("buckets");
  if (count == nullptr || !count->is_number()) return false;
  if (sum == nullptr || !sum->is_number()) return false;
  if (sparse == nullptr || !sparse->is_array()) return false;
  HistogramSnapshot snap;
  for (const common::Json& pair : sparse->items()) {
    if (!pair.is_array() || pair.size() != 2) return false;
    const common::Json& index_json = pair.items()[0];
    const common::Json& count_json = pair.items()[1];
    if (!index_json.is_number() || !count_json.is_number()) return false;
    const auto index = static_cast<std::size_t>(index_json.as_number());
    if (index > Histogram::kBuckets) return false;
    snap.buckets[index] = static_cast<std::uint64_t>(count_json.as_number());
  }
  snap.count = static_cast<std::uint64_t>(count->as_number());
  snap.sum = sum->as_number();
  *out = snap;
  return true;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<analysis::Mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<analysis::Mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<analysis::Mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

common::Json MetricsRegistry::json_snapshot() const {
  std::lock_guard<analysis::Mutex> lock(mu_);
  common::Json root = common::Json::object();
  common::Json counters = common::Json::object();
  for (const auto& [name, counter] : counters_)
    counters.set(name, counter->load());
  root.set("counters", std::move(counters));
  common::Json gauges = common::Json::object();
  for (const auto& [name, gauge] : gauges_) gauges.set(name, gauge->load());
  root.set("gauges", std::move(gauges));
  common::Json histograms = common::Json::object();
  for (const auto& [name, histogram] : histograms_) {
    common::Json h = common::Json::object();
    h.set("count", histogram->count());
    h.set("sum", histogram->sum());
    h.set("p50", histogram->quantile(0.50));
    h.set("p95", histogram->quantile(0.95));
    h.set("p99", histogram->quantile(0.99));
    histograms.set(name, std::move(h));
  }
  root.set("histograms", std::move(histograms));
  return root;
}

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard<analysis::Mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    const std::string metric = sanitize_metric_name(name);
    os << "# TYPE " << metric << " counter\n";
    os << metric << " " << counter->load() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string metric = sanitize_metric_name(name);
    os << "# TYPE " << metric << " gauge\n";
    os << metric << " " << format_number(gauge->load()) << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string metric = sanitize_metric_name(name);
    os << "# TYPE " << metric << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
      const std::uint64_t in_bucket = histogram->bucket_count(i);
      cumulative += in_bucket;
      // Keep the exposition short: only emit a bucket line when the
      // cumulative count changed (plus the mandatory +Inf line).
      if (in_bucket == 0 && i != Histogram::kBuckets) continue;
      os << metric << "_bucket{le=\""
         << format_number(Histogram::bucket_upper_bound(i)) << "\"} "
         << cumulative << "\n";
    }
    os << metric << "_sum " << format_number(histogram->sum()) << "\n";
    os << metric << "_count " << histogram->count() << "\n";
  }
  return os.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace arcs::telemetry
