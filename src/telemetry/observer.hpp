// Observer-kind OMPT tool that mirrors somp runtime events into the
// Tracer as virtual-time spans and counters.
//
// Registered with ToolKind::Observer, so the runtime charges no
// instrumentation time for it (somp only bills overhead for Client
// tools) — attaching tracing keeps tuned results bit-identical to an
// untraced run, which tests/telemetry_test.cpp asserts differentially.
//
// Per region execution the observer emits, all in TimeDomain::Virtual:
//  * one "region:<name>" Complete span on the runtime's region lane;
//  * per-thread "loop" and "barrier" Complete spans (children of the
//    region span) on per-thread lanes;
//  * "power_w" and "energy_j" Counter samples read from the machine's
//    RAPL model at region exit — the power-over-time track.
//
// Concurrent runtimes (exec pool jobs) each get a disjoint lane range so
// their virtual timelines don't interleave on one track.
#pragma once

namespace arcs::somp {
class Runtime;
}

namespace arcs::telemetry {

/// Subscribes the tracing observer to `runtime`'s tool registry. The
/// callbacks own their state (shared_ptr captures) and are never
/// unregistered — they die with the runtime. Cheap no-ops when the
/// Tracer is disabled. Safe to call for every runtime a program builds.
void attach_tracing(somp::Runtime& runtime);

}  // namespace arcs::telemetry
