// Unified telemetry layer — cross-layer span tracks (docs/OBSERVABILITY.md).
//
// ARCS is a measurement-driven runtime: the whole loop is "observe region
// timing and RAPL power, then decide". This subsystem gives every layer
// one place to record what it observed, on a timeline a human can open:
//
//  * spans — typed intervals (somp parallel/loop/barrier, apex timers,
//    Harmony search iterations, exec pool jobs, serve request handling)
//    recorded into per-thread lock-free ring buffers;
//  * counter tracks — sampled values (sim RAPL power/energy, serve cache
//    hit totals) on the same timeline;
//  * SpanContext — a {trace_id, parent_id} pair that crosses process
//    boundaries inside arcs-serve/v1 frames, so a client request, its
//    server worker dispatch, and the Harmony session driving it appear as
//    one causally linked trace.
//
// Two time domains share the trace: *virtual* seconds (the simulator's
// clocks: somp/apex/sim events carry exact virtual timestamps) and *host*
// seconds (real threads doing real work: exec workers, serve handlers).
// They export as two Chrome-trace "processes" so neither lies about the
// other's scale.
//
// Recording discipline: emission is wait-free on the hot path — one
// relaxed enabled-check when tracing is off, one striped-atomic sequence
// grab plus a write into the calling thread's own ring when on. Rings are
// single-writer (the owning thread); drain() is called after emitters
// quiesce. A full ring drops the *newest* events (keeping every span that
// already completed balanced) and counts the loss; the first drop logs
// one warning so silent truncation is visible.
//
// Tracing must never perturb the simulation it observes: all somp-side
// emission happens through an Observer-kind OMPT tool (observer.hpp), so
// no instrumentation time is charged and tuned results stay bit-identical
// with tracing on (tests/telemetry_test.cpp asserts this).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/sync.hpp"

namespace arcs::telemetry {

/// Which layer emitted an event (the Chrome-trace "cat" field).
enum class Category : std::uint8_t {
  Somp,     ///< simulated OpenMP runtime (regions, loops, barriers)
  Apex,     ///< APEX timers
  Harmony,  ///< search iterations and configuration switches
  Exec,     ///< experiment-pool jobs
  Serve,    ///< tuning-service request handling
  Sim,      ///< machine counters (RAPL power/energy)
  Client,   ///< serve-client request spans (the caller side of an RPC)
  Fleet,    ///< fleet collector scrapes, SLO alerts, anomaly instants
};

std::string_view to_string(Category category);

/// Which clock an event's timestamp belongs to. Virtual events carry the
/// simulator's deterministic clocks; Host events carry real wall time
/// (or the Tracer's injected clock in deterministic tests).
enum class TimeDomain : std::uint8_t { Virtual, Host };

enum class Phase : std::uint8_t {
  Complete,  ///< an interval: ts .. ts+dur (Chrome "X")
  Counter,   ///< a sampled value at ts (Chrome "C")
  Instant,   ///< a point event at ts (Chrome "i")
};

/// Distributed-tracing context: propagated as an optional field in
/// arcs-serve/v1 frames. trace_id identifies the whole causal chain;
/// parent_id the span that caused this one. Ids are allocated below
/// 2^53 so they survive a JSON number round trip exactly.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_id = 0;

  bool valid() const { return trace_id != 0; }
  bool operator==(const SpanContext&) const = default;
};

/// Fixed-size event record (fits a ring slot; name is copied, truncated
/// if longer than kMaxName).
inline constexpr std::size_t kMaxName = 47;

struct Event {
  Phase phase = Phase::Complete;
  Category category = Category::Somp;
  TimeDomain domain = TimeDomain::Host;
  char name[kMaxName + 1] = {};
  std::uint32_t track = 0;       ///< logical lane (Chrome "tid")
  double ts = 0;                 ///< seconds in `domain`
  double dur = 0;                ///< Complete only
  double value = 0;              ///< Counter only
  std::uint64_t id = 0;          ///< span id (0 = none)
  std::uint64_t trace = 0;       ///< trace id this span belongs to
  std::uint64_t parent = 0;      ///< parent span id (0 = root)
  std::uint64_t arg0 = 0;        ///< layer-specific (e.g. parallel_id)
  std::uint64_t arg1 = 0;        ///< layer-specific (e.g. ticket)
  std::uint64_t seq = 0;         ///< global emission order (drain sort key)

  void set_name(std::string_view n);
};

/// A secondary destination for emitted events. The flight recorder
/// (flight_recorder.hpp) implements this; record() must be thread-safe
/// and non-blocking (it runs on every emitting hot path).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void record(const Event& event) = 0;
};

struct TracerOptions {
  /// Per-thread ring capacity in events (~120 B each).
  std::size_t ring_capacity = 1u << 16;
  /// Folded into span/trace ids (low 20 bits become the id prefix) so
  /// ids from different processes on one trace rarely collide while
  /// staying below 2^53 for exact JSON round trips. 0 = ids start at 1.
  std::uint64_t id_seed = 0;
  /// Host-domain clock override (seconds; must be monotone). Tests
  /// install a manual clock for byte-identical traces; the default is
  /// steady_clock seconds since enable().
  std::function<double()> clock;
};

/// Process-wide trace recorder. All methods are thread-safe; emission
/// into the calling thread's ring is lock-free.
class Tracer {
 public:
  static Tracer& instance();

  /// Starts recording into the per-thread rings. Rings are (re)created
  /// lazily per emitting thread.
  void enable(TracerOptions options = {});
  /// Stops ring recording; already-buffered events stay drainable. An
  /// attached sink (flight recorder) keeps receiving events.
  void disable();
  /// True when emission goes anywhere: the rings (enable()) or an
  /// attached sink. Spans form whenever this is true.
  bool enabled() const { return mode_.load(std::memory_order_relaxed) != 0; }
  /// True when the per-thread rings are recording (enable() was called).
  bool ring_enabled() const {
    return (mode_.load(std::memory_order_relaxed) & kModeRing) != 0;
  }

  /// Attaches/detaches the secondary sink. Every emitted event is also
  /// delivered to the sink (including ones the rings would drop). The
  /// sink must outlive its attachment; detach with nullptr. Attaching
  /// when tracing was never enabled starts the host clock so span
  /// timestamps are seconds since attach.
  void attach_sink(EventSink* sink);

  /// Discards all buffered events, drop counts, id/seq state, and track
  /// names (tests; also the way one process records two separate runs).
  void reset();

  /// Host-domain clock (seconds since enable, or the injected clock).
  double now() const;

  /// Allocates a span/trace id: (id_seed & 0xfffff) << 32 | counter.
  std::uint64_t next_id();

  // --- emission -----------------------------------------------------
  /// Copies `event` (seq assigned here) into this thread's ring. No-op
  /// when disabled. Drops the event (counted, warn-once) when full.
  void emit(Event event);

  void complete(Category category, TimeDomain domain, std::string_view name,
                std::uint32_t track, double ts, double dur,
                std::uint64_t id = 0, std::uint64_t trace = 0,
                std::uint64_t parent = 0, std::uint64_t arg0 = 0,
                std::uint64_t arg1 = 0);
  void counter(Category category, TimeDomain domain, std::string_view name,
               std::uint32_t track, double ts, double value);
  void instant(Category category, TimeDomain domain, std::string_view name,
               std::uint32_t track, double ts, std::uint64_t arg0 = 0);

  // --- tracks -------------------------------------------------------
  /// Stable per-thread host-domain lane id (assigned on first use).
  std::uint32_t host_track();
  /// Reserves `count` consecutive virtual-domain lanes and returns the
  /// first. Concurrent emitters (exec-pool runtimes, apex instances) get
  /// disjoint ranges so their virtual timelines never share a track.
  std::uint32_t allocate_virtual_tracks(std::uint32_t count);
  /// Names a lane in the exported trace ("exec worker 3"). Idempotent;
  /// cheap enough to call unconditionally at thread start.
  void name_track(TimeDomain domain, std::uint32_t track,
                  std::string_view name);
  /// Convenience: names the calling thread's host lane.
  void name_host_thread(std::string_view name);

  // --- draining -----------------------------------------------------
  /// Collects every thread's buffered events in emission (seq) order and
  /// clears the rings. Call after emitters quiesce.
  std::vector<Event> drain();

  /// Events discarded because a ring was full (since enable/reset).
  std::uint64_t dropped() const;

  /// Snapshot of the registered track names, keyed by (domain, track).
  std::map<std::pair<int, std::uint32_t>, std::string> track_names() const;

 private:
  struct ThreadBuffer {
    std::vector<Event> ring;
    std::atomic<std::size_t> count{0};
    std::atomic<std::uint64_t> dropped{0};
  };

  static constexpr unsigned kModeRing = 1u << 0;
  static constexpr unsigned kModeSink = 1u << 1;

  Tracer() = default;
  ThreadBuffer* local_buffer();

  std::atomic<unsigned> mode_{0};
  std::atomic<EventSink*> sink_{nullptr};
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> epoch_{0};  ///< bumped by enable()/reset()
  std::atomic<bool> warned_drop_{false};
  std::uint64_t id_prefix_ = 0;          ///< set by enable()
  std::size_t ring_capacity_ = 1u << 16;
  std::function<double()> clock_;        ///< written by enable() only
  double clock_origin_ = 0;

  // enable()/reset() nest buffers_mu_ -> names_mu_; ranks encode that.
  mutable analysis::Mutex buffers_mu_{
      "telemetry/buffers", analysis::sync::rank::kTelemetryBuffers};
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;

  std::atomic<std::uint32_t> next_host_track_{0};
  std::atomic<std::uint32_t> next_virtual_track_{0};

  mutable analysis::Mutex names_mu_{
      "telemetry/names", analysis::sync::rank::kTelemetryNames};
  std::map<std::pair<int, std::uint32_t>, std::string> track_names_;
};

/// The thread-local span a ScopedSpan nests under (causal default for
/// children on the same thread). {0,0} when no span is open.
SpanContext current_context();

/// RAII host-domain span: captures the clock at construction, emits one
/// Complete event at destruction, and exposes a SpanContext children can
/// inherit (same-thread children pick it up automatically). Inert when
/// tracing is disabled at construction.
class ScopedSpan {
 public:
  /// `parent`: explicit causal parent (e.g. from a request frame);
  /// defaults to the innermost open span on this thread.
  explicit ScopedSpan(Category category, std::string_view name,
                      SpanContext parent = {}, std::uint64_t arg0 = 0,
                      std::uint64_t arg1 = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  std::uint64_t id() const { return id_; }
  /// Context for work this span causes: {its trace, itself as parent}.
  SpanContext context() const { return active_ ? SpanContext{trace_, id_}
                                              : SpanContext{}; }

 private:
  bool active_ = false;
  Category category_ = Category::Serve;
  char name_[kMaxName + 1] = {};
  std::uint64_t id_ = 0;
  std::uint64_t trace_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t arg0_ = 0;
  std::uint64_t arg1_ = 0;
  std::uint32_t track_ = 0;
  double t0_ = 0;
  SpanContext saved_;  ///< restored on destruction
};

}  // namespace arcs::telemetry
