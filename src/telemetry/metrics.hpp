// Metrics registry: Counter / Gauge / Histogram behind one interface.
//
// Replaces the per-layer bookkeeping that grew organically — serve's
// private striped counters, apex's ad-hoc user counters — with named
// instruments owned by a registry that can render itself two ways:
//  * prometheus_text(): Prometheus text exposition (scrapeable via the
//    arcsd `metrics` op with format="prom");
//  * json_snapshot(): a common::Json object (arcsd --metrics-interval
//    periodic snapshots, tests).
//
// Instruments are created once (first use) and live as long as the
// registry; lookups return stable references so hot paths hold a
// `Counter&` and never touch the registry map again. All instruments are
// safe under unsynchronized concurrent use.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "analysis/sync.hpp"
#include "common/json.hpp"

namespace arcs::telemetry {

/// A monotonic counter striped across cache lines: concurrent add()ers
/// land on per-thread slots instead of ping-ponging one line between
/// cores. load() sums the slots (monotone, but not a point-in-time
/// snapshot across threads). This is serve's proven hit-path design,
/// promoted to the shared layer.
class Counter {
 public:
  /// Adds 1; returns this slot's previous count (for cheap sampling:
  /// `(add() & 0xff) == 0` fires once per 256 bumps per thread).
  std::uint64_t add() { return add(1); }
  /// Adds n; returns this slot's previous count.
  std::uint64_t add(std::uint64_t n) {
    return slots_[slot_index()].value.fetch_add(n,
                                                std::memory_order_relaxed);
  }
  std::uint64_t load() const {
    std::uint64_t sum = 0;
    for (const Slot& slot : slots_)
      sum += slot.value.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  static constexpr std::size_t kSlots = 16;
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> value{0};
  };
  static std::size_t slot_index() {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t index =
        next.fetch_add(1, std::memory_order_relaxed) % kSlots;
    return index;
  }
  Slot slots_[kSlots];
};

/// A last-write-wins instantaneous value (queue depth, cache size).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double load() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

struct HistogramSnapshot;

/// Fixed log-scale histogram: 64 buckets with upper bounds
/// kLowestBound * 2^i (1 ns .. ~9.2 Gs when observing seconds), plus an
/// implicit +Inf overflow. One layout for every metric keeps exposition
/// and diffing trivial; base-2 bounds make bucket lookup a branch-free
/// binary search and merging across runs exact.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;
  static constexpr double kLowestBound = 1e-9;

  void observe(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Observations in bucket i (v <= bucket_upper_bound(i), above the
  /// previous bound). i == kBuckets is the +Inf overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  static double bucket_upper_bound(std::size_t i);
  /// Index of the bucket observe(v) lands in (kBuckets for overflow).
  static std::size_t bucket_index(double v);

  /// Value-semantic copy of the current state (not atomic across
  /// concurrent observers, same caveat as count()).
  HistogramSnapshot snapshot() const;

  /// Bound of the bucket holding quantile q in [0,1] (upper-bound
  /// estimate; exact value is somewhere at or below it). 0 when empty.
  double quantile(double q) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets + 1> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// A value-semantic Histogram state: what a scrape carries over the wire
/// and what the time-series store retains. Same bucket layout as
/// Histogram (base-2 bounds), so deltas and merges are exact — this is
/// the shared quantile walk used by serve latency reporting, the fleet
/// collector, and the SLO engine.
struct HistogramSnapshot {
  std::array<std::uint64_t, Histogram::kBuckets + 1> buckets{};
  std::uint64_t count = 0;
  double sum = 0;

  /// Bound of the bucket holding quantile q in [0,1] (upper-bound
  /// estimate, identical semantics to Histogram::quantile). 0 when
  /// empty.
  double quantile(double q) const;
  /// Observations-per-bucket since `earlier` (a previous snapshot of the
  /// same histogram). Per-bucket saturating: a shrunk count reads as 0.
  HistogramSnapshot delta_since(const HistogramSnapshot& earlier) const;
  /// Accumulates `other` into this (exact: identical bucket layout).
  void merge(const HistogramSnapshot& other);

  /// {"count": n, "sum": s, "buckets": [[index, count], ...]} — sparse,
  /// only non-empty buckets appear.
  common::Json to_json() const;
  /// Parses to_json() output; false (and *out untouched) on malformed
  /// input.
  static bool from_json(const common::Json& json, HistogramSnapshot* out);
};

/// Named-instrument registry. Lookup-or-create is mutex-guarded; the
/// returned references stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"count","sum","p50","p95","p99"}}} — insertion-ordered, diffable.
  common::Json json_snapshot() const;

  /// Prometheus text exposition. Instrument names are sanitized to
  /// [a-zA-Z0-9_] and prefixed "arcs_"; histograms render cumulative
  /// _bucket{le="..."} series plus _sum and _count.
  std::string prometheus_text() const;

  /// Process-wide default registry (tools, arcsd).
  static MetricsRegistry& global();

 private:
  mutable analysis::Mutex mu_{"telemetry/metrics",
                              analysis::sync::rank::kTelemetryMetrics};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace arcs::telemetry
