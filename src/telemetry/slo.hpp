// SLO evaluation and anomaly detection over retained series.
//
// The fleet collector (src/fleet/collector.hpp) computes windowed
// indicators — p99 serve latency, error rate, cache hit ratio, power-cap
// violation seconds — each scrape and feeds them through this engine.
// Rules fire with hysteresis (N consecutive breaches to fire, M
// consecutive OKs to clear) so one noisy scrape cannot flap an alert,
// and every transition is emitted as a Category::Fleet telemetry
// instant so alerts land on the same timeline as the spans that explain
// them.
//
// The anomaly detector is a robust z-score over an EWMA center and an
// EWMA absolute deviation (the 1.4826 factor maps mean absolute
// deviation to a normal sigma estimate): cheap, streaming, and
// indifferent to the metric's absolute scale — exactly the drift story
// the GNN autotuning work (PAPERS.md) needs retained series for.
//
// Both classes are deliberately *unsynchronized*: the collector guards
// its engine with its own mutex, and tests drive them single-threaded
// with a synthetic clock.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"

namespace arcs::telemetry {

/// Which side of the target is healthy. UpperBound: value must stay at
/// or below target (latency, error rate). LowerBound: value must stay
/// at or above target (cache hit ratio).
enum class SloKind { UpperBound, LowerBound };

enum class SloTransition { None, Fired, Cleared };

struct SloOptions {
  int fire_after = 2;   ///< consecutive breaching evaluations to fire
  int clear_after = 2;  ///< consecutive healthy evaluations to clear
};

struct Alert {
  std::string name;      ///< rule name ("fleet/p99_us", "node-b/up")
  std::string node;      ///< "" for fleet-wide rules
  std::string severity;  ///< "page" or "warn"
  std::string message;
  double since_s = 0;    ///< when the alert fired (engine clock)
  double value = 0;      ///< last evaluated value
  double target = 0;
  double burn_rate = 0;  ///< how fast the budget burns (1.0 = at target)
  bool active = false;

  common::Json to_json() const;
};

/// Rolling SLO evaluation with per-rule hysteresis. Rules are created on
/// first evaluate() of a (name, node) pair; the engine retains active
/// alerts plus a bounded history of transitions.
class SloEngine {
 public:
  explicit SloEngine(SloOptions options = {});

  /// Evaluates one rule at time t. Returns Fired/Cleared exactly once
  /// per transition (hysteresis); None otherwise. Transitions are also
  /// emitted as Category::Fleet telemetry instants when tracing or the
  /// flight recorder is on.
  SloTransition evaluate(std::string_view name, std::string_view node,
                         double t, double value, double target,
                         SloKind kind, std::string_view severity = "page");

  /// Currently firing alerts, in rule-creation order.
  std::vector<Alert> active() const;
  /// Recent fired/cleared transitions, oldest first (bounded at 64).
  const std::vector<Alert>& history() const { return history_; }

  /// Alerts fired since construction (monotone; detection-latency gate
  /// in bench_x17 reads this).
  std::uint64_t fired_total() const { return fired_total_; }

 private:
  struct Rule {
    std::string name;
    std::string node;
    int breach_streak = 0;
    int ok_streak = 0;
    Alert alert;
  };

  Rule& rule_for(std::string_view name, std::string_view node);

  SloOptions options_;
  std::vector<Rule> rules_;
  std::vector<Alert> history_;
  std::uint64_t fired_total_ = 0;
};

/// Streaming robust z-score: EWMA center + EWMA absolute deviation.
/// observe() returns true when the sample deviates more than `z` sigma
/// estimates from the running center (after a warm-up of min_samples).
class AnomalyDetector {
 public:
  explicit AnomalyDetector(double alpha = 0.2, double z = 4.0,
                           std::size_t min_samples = 8)
      : alpha_(alpha), z_(z), min_samples_(min_samples) {}

  bool observe(double v);

  double center() const { return center_; }
  double deviation() const { return deviation_; }
  std::size_t samples() const { return samples_; }

 private:
  double alpha_;
  double z_;
  std::size_t min_samples_;
  double center_ = 0;
  double deviation_ = 0;
  std::size_t samples_ = 0;
};

}  // namespace arcs::telemetry
