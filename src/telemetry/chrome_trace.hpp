// Chrome Trace Event Format export (Perfetto-loadable).
//
// Drained telemetry events become one JSON document in the Trace Event
// Format ("JSON Object Format" flavor): {"traceEvents": [...], ...}.
// Open the file at https://ui.perfetto.dev or chrome://tracing.
//
// Mapping:
//  * TimeDomain::Virtual → pid 1 ("arcs virtual time"), TimeDomain::Host
//    → pid 2 ("arcs host time"); the two clocks never share a lane, so
//    virtual seconds are not misread as wall time.
//  * Event::track → tid within its pid; track names become thread_name
//    metadata ("M" events).
//  * Phase::Complete → "X" with ts/dur in microseconds; Phase::Counter
//    → "C"; Phase::Instant → "i" (scope "t").
//  * Span/trace/parent ids and layer args ride in each event's "args" so
//    cross-process causality (SpanContext) survives into the trace.
//
// Export is deterministic: events are ordered by (pid, tid, ts, seq) and
// written through common::Json (stable key order), so identical runs
// produce byte-identical files — asserted by tests/telemetry_test.cpp.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "telemetry/telemetry.hpp"

namespace arcs::telemetry {

inline constexpr std::string_view kTraceSchema = "arcs-trace/v1";

/// Builds the full trace document. `track_names` come from
/// Tracer::track_names(); `dropped` from Tracer::dropped().
common::Json chrome_trace_json(
    const std::vector<Event>& events,
    const std::map<std::pair<int, std::uint32_t>, std::string>& track_names,
    std::uint64_t dropped);

/// Convenience: drains the process Tracer and builds the document.
common::Json drain_chrome_trace(Tracer& tracer = Tracer::instance());

/// Drains the Tracer and writes the document to `path` (pretty-printed).
/// Returns false (and logs) on I/O failure.
bool write_chrome_trace(const std::string& path,
                        Tracer& tracer = Tracer::instance());

/// Structural validation of a parsed trace document: the otherData
/// schema tag must be kTraceSchema, traceEvents must be an array, and
/// every event must carry a string "ph", numeric "pid"/"tid", and (for
/// non-metadata phases) a numeric "ts" plus a string "name". A truncated
/// or hand-edited dump fails here with a specific message in *error.
/// arcs_trace refuses documents that fail this check.
bool validate_trace(const common::Json& doc, std::string* error);

/// Merges parsed trace documents into one (concatenated traceEvents,
/// merged process/thread metadata, summed dropped_events). Inputs must
/// be chrome_trace_json() documents; pids are kept as-is because all
/// producers share the virtual/host pid convention.
common::Json merge_chrome_traces(const std::vector<common::Json>& traces);

}  // namespace arcs::telemetry
