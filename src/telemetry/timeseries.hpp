// Retained time series: fixed-capacity rings with tiered downsampling.
//
// PR 4's telemetry is point-in-time — one prom scrape, one trace file.
// The fleet observability plane needs *retained* series to evaluate SLO
// windows and detect drift, so this layer keeps every recorded sample in
// three tiers:
//  * Raw:    every sample, newest-wins ring (default 512 points);
//  * Mid:    10 s aggregate buckets (min/max/sum/last/count);
//  * Coarse: 60 s aggregate buckets.
// Buckets close when a sample lands past the bucket's time window, so
// downsampling is driven purely by the timestamps the caller supplies —
// tests pass a synthetic clock and the tiers are fully deterministic.
// Dependency-free by design (common::Json only for exposition).
//
// Series/HistogramSeries are unsynchronized building blocks; the
// TimeSeriesStore wraps a named map of them behind one mutex (rank
// kTelemetrySeries) for concurrent scrape/read use.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/sync.hpp"
#include "common/json.hpp"
#include "telemetry/metrics.hpp"

namespace arcs::telemetry {

/// One raw sample or one closed aggregate bucket. For raw points `t` is
/// the sample time and min==max==sum==last==v, count==1; for tier
/// buckets `t` is the bucket start (floor(sample_t / width) * width).
struct SeriesPoint {
  double t = 0;
  double min = 0;
  double max = 0;
  double sum = 0;
  double last = 0;
  std::uint64_t count = 0;

  double mean() const {
    return count == 0 ? 0 : sum / static_cast<double>(count);
  }
};

enum class Tier { Raw, Mid, Coarse };

struct TimeSeriesOptions {
  std::size_t raw_capacity = 512;
  std::size_t mid_capacity = 360;     ///< 10 s buckets → 1 h retained
  std::size_t coarse_capacity = 1440; ///< 60 s buckets → 1 day retained
  double mid_width_s = 10.0;
  double coarse_width_s = 60.0;
};

namespace detail {

/// Fixed-capacity drop-oldest ring. index 0 is the oldest element.
template <typename T>
class Ring {
 public:
  explicit Ring(std::size_t capacity) : capacity_(capacity) {
    items_.reserve(capacity_);
  }

  void push(T v) {
    if (items_.size() < capacity_) {
      items_.push_back(std::move(v));
    } else {
      items_[head_] = std::move(v);
      head_ = (head_ + 1) % capacity_;
    }
  }

  std::size_t size() const { return items_.size(); }
  const T& at(std::size_t i) const {
    return items_[(head_ + i) % items_.size()];
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::vector<T> items_;
};

}  // namespace detail

/// A scalar series (gauge samples, or counter deltas via
/// record_cumulative). Not thread-safe; see TimeSeriesStore.
class Series {
 public:
  explicit Series(const TimeSeriesOptions& options);

  /// Records one sample. Timestamps are clamped monotone: a sample older
  /// than the last one is recorded at the last time (scrape clocks only
  /// ever skew slightly; the rings must stay sorted).
  void record(double t, double v);

  /// Records a cumulative (monotone) counter reading; the series stores
  /// the *delta* since the previous reading. The first reading only
  /// establishes the baseline (no point recorded); a reading below the
  /// previous one means the process restarted, so the full new value
  /// counts as the delta.
  void record_cumulative(double t, double cumulative);

  /// Chronological points of a tier, including the still-open bucket (so
  /// readers always see data recorded in the current window).
  std::vector<SeriesPoint> points(Tier tier) const;

  /// Aggregate of raw points with from_t <= t <= to_t (count == 0 when
  /// the window is empty or has fallen off the raw ring).
  SeriesPoint window(double from_t, double to_t) const;

  double last_time() const { return last_t_; }

 private:
  struct Bucket {
    bool open = false;
    std::int64_t index = 0;  ///< floor(t / width)
    SeriesPoint point;
  };

  void fold(Bucket& bucket, detail::Ring<SeriesPoint>& ring, double width,
            double t, double v);

  TimeSeriesOptions options_;
  detail::Ring<SeriesPoint> raw_;
  detail::Ring<SeriesPoint> mid_;
  detail::Ring<SeriesPoint> coarse_;
  Bucket open_mid_;
  Bucket open_coarse_;
  double last_t_ = 0;
  bool have_last_t_ = false;
  double prev_cumulative_ = 0;
  bool have_cumulative_ = false;
};

/// A histogram series: retains per-interval *delta* snapshots so a
/// window query can merge exact per-bucket counts and answer "p99 over
/// the last 60 s". Raw keeps one delta per scrape; mid/coarse keep
/// merged deltas per bucket.
class HistogramSeries {
 public:
  explicit HistogramSeries(const TimeSeriesOptions& options);

  /// Records a cumulative histogram reading (what a scrape carries). The
  /// first reading establishes the baseline; later readings store the
  /// delta. A count regression (process restart) treats the new reading
  /// as the whole delta.
  void record(double t, const HistogramSnapshot& cumulative);

  struct Point {
    double t = 0;
    HistogramSnapshot delta;
  };

  std::vector<Point> points(Tier tier) const;

  /// Merged delta over raw points with from_t <= t <= to_t.
  HistogramSnapshot window(double from_t, double to_t) const;

 private:
  struct Bucket {
    bool open = false;
    std::int64_t index = 0;
    Point point;
  };

  void fold(Bucket& bucket, detail::Ring<Point>& ring, double width,
            double t, const HistogramSnapshot& delta);

  TimeSeriesOptions options_;
  detail::Ring<Point> raw_;
  detail::Ring<Point> mid_;
  detail::Ring<Point> coarse_;
  Bucket open_mid_;
  Bucket open_coarse_;
  double last_t_ = 0;
  bool have_last_t_ = false;
  HistogramSnapshot prev_cumulative_;
  bool have_cumulative_ = false;
};

/// Named series behind one lock: the fleet collector's backing store.
/// Gauge/counter/histogram series live in separate namespaces keyed by
/// name (the collector prefixes "<node>/").
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TimeSeriesOptions options = {});

  void record_gauge(std::string_view name, double t, double v);
  void record_counter(std::string_view name, double t, double cumulative);
  void record_histogram(std::string_view name, double t,
                        const HistogramSnapshot& cumulative);

  /// Empty vector when the series does not exist.
  std::vector<SeriesPoint> points(std::string_view name, Tier tier) const;
  /// count == 0 when the series does not exist or the window is empty.
  SeriesPoint window(std::string_view name, double from_t,
                     double to_t) const;
  HistogramSnapshot histogram_window(std::string_view name, double from_t,
                                     double to_t) const;

  std::vector<std::string> scalar_names() const;
  std::vector<std::string> histogram_names() const;

 private:
  mutable analysis::Mutex mu_{"telemetry/series",
                              analysis::sync::rank::kTelemetrySeries};
  TimeSeriesOptions options_;
  std::map<std::string, std::unique_ptr<Series>, std::less<>> scalars_;
  std::map<std::string, std::unique_ptr<HistogramSeries>, std::less<>>
      histograms_;
};

const char* to_string(Tier tier);

}  // namespace arcs::telemetry
