#include "telemetry/chrome_trace.hpp"

#include <algorithm>
#include <fstream>

#include "common/log.hpp"

namespace arcs::telemetry {

namespace {

constexpr int kVirtualPid = 1;
constexpr int kHostPid = 2;

int pid_for(TimeDomain domain) {
  return domain == TimeDomain::Virtual ? kVirtualPid : kHostPid;
}

double to_micros(double seconds) { return seconds * 1e6; }

common::Json metadata_event(const std::string& name, int pid, int tid,
                            const std::string& value) {
  common::Json e = common::Json::object();
  e.set("ph", "M");
  e.set("pid", pid);
  e.set("tid", tid);
  e.set("name", name);
  common::Json args = common::Json::object();
  args.set("name", value);
  e.set("args", std::move(args));
  return e;
}

common::Json trace_event(const Event& event) {
  common::Json e = common::Json::object();
  switch (event.phase) {
    case Phase::Complete:
      e.set("ph", "X");
      break;
    case Phase::Counter:
      e.set("ph", "C");
      break;
    case Phase::Instant:
      e.set("ph", "i");
      break;
  }
  e.set("pid", pid_for(event.domain));
  e.set("tid", event.track);
  e.set("ts", to_micros(event.ts));
  e.set("name", std::string(event.name));
  e.set("cat", std::string(to_string(event.category)));
  if (event.phase == Phase::Complete)
    e.set("dur", to_micros(event.dur));
  if (event.phase == Phase::Instant) e.set("s", "t");
  common::Json args = common::Json::object();
  if (event.phase == Phase::Counter) {
    args.set("value", event.value);
  } else {
    if (event.id != 0) args.set("span", event.id);
    if (event.trace != 0) args.set("trace", event.trace);
    if (event.parent != 0) args.set("parent", event.parent);
    if (event.arg0 != 0) args.set("arg0", event.arg0);
    if (event.arg1 != 0) args.set("arg1", event.arg1);
  }
  if (args.size() > 0) e.set("args", std::move(args));
  return e;
}

}  // namespace

common::Json chrome_trace_json(
    const std::vector<Event>& events,
    const std::map<std::pair<int, std::uint32_t>, std::string>& track_names,
    std::uint64_t dropped) {
  // Stable presentation order: group by pid, then tid, then timestamp;
  // seq breaks ties so the document is a pure function of the events.
  std::vector<const Event*> ordered;
  ordered.reserve(events.size());
  for (const Event& e : events) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) {
                     const int pa = pid_for(a->domain);
                     const int pb = pid_for(b->domain);
                     if (pa != pb) return pa < pb;
                     if (a->track != b->track) return a->track < b->track;
                     if (a->ts != b->ts) return a->ts < b->ts;
                     return a->seq < b->seq;
                   });

  common::Json trace_events = common::Json::array();
  trace_events.push_back(
      metadata_event("process_name", kVirtualPid, 0, "arcs virtual time"));
  trace_events.push_back(
      metadata_event("process_name", kHostPid, 0, "arcs host time"));
  for (const auto& [key, name] : track_names) {
    const int pid =
        key.first == static_cast<int>(TimeDomain::Virtual) ? kVirtualPid
                                                           : kHostPid;
    trace_events.push_back(metadata_event("thread_name", pid,
                                          static_cast<int>(key.second),
                                          name));
  }
  for (const Event* e : ordered) trace_events.push_back(trace_event(*e));

  common::Json root = common::Json::object();
  root.set("displayTimeUnit", "ms");
  common::Json other = common::Json::object();
  other.set("schema", std::string(kTraceSchema));
  other.set("dropped_events", dropped);
  root.set("otherData", std::move(other));
  root.set("traceEvents", std::move(trace_events));
  return root;
}

common::Json drain_chrome_trace(Tracer& tracer) {
  const std::vector<Event> events = tracer.drain();
  return chrome_trace_json(events, tracer.track_names(), tracer.dropped());
}

bool write_chrome_trace(const std::string& path, Tracer& tracer) {
  const common::Json doc = drain_chrome_trace(tracer);
  std::ofstream out(path);
  if (!out) {
    common::log_error() << "telemetry: cannot open trace file " << path;
    return false;
  }
  out << doc.dump(1) << "\n";
  if (!out) {
    common::log_error() << "telemetry: short write to trace file " << path;
    return false;
  }
  return true;
}

bool validate_trace(const common::Json& doc, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (!doc.is_object()) return fail("document is not a JSON object");
  const common::Json* other = doc.find("otherData");
  if (other == nullptr || !other->is_object())
    return fail("missing otherData object");
  const common::Json* schema = other->find("schema");
  if (schema == nullptr || !schema->is_string())
    return fail("otherData.schema missing");
  if (schema->as_string() != kTraceSchema)
    return fail("otherData.schema is '" + schema->as_string() +
                "', expected '" + std::string(kTraceSchema) + "'");
  const common::Json* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array())
    return fail("traceEvents missing or not an array");
  std::size_t index = 0;
  for (const common::Json& event : events->items()) {
    const std::string at = "traceEvents[" + std::to_string(index) + "]";
    ++index;
    if (!event.is_object()) return fail(at + " is not an object");
    const common::Json* ph = event.find("ph");
    if (ph == nullptr || !ph->is_string())
      return fail(at + " has no string 'ph'");
    const common::Json* pid = event.find("pid");
    const common::Json* tid = event.find("tid");
    if (pid == nullptr || !pid->is_number())
      return fail(at + " has no numeric 'pid'");
    if (tid == nullptr || !tid->is_number())
      return fail(at + " has no numeric 'tid'");
    if (ph->as_string() == "M") continue;
    const common::Json* ts = event.find("ts");
    if (ts == nullptr || !ts->is_number())
      return fail(at + " has no numeric 'ts'");
    const common::Json* name = event.find("name");
    if (name == nullptr || !name->is_string())
      return fail(at + " has no string 'name'");
  }
  return true;
}

common::Json merge_chrome_traces(const std::vector<common::Json>& traces) {
  common::Json merged_events = common::Json::array();
  std::uint64_t dropped = 0;
  // Deduplicate metadata by (ph, pid, tid, name-arg) so merged traces
  // don't repeat process/thread names per input.
  std::vector<std::string> seen_metadata;
  for (const common::Json& trace : traces) {
    if (const common::Json* other = trace.find("otherData")) {
      if (const common::Json* d = other->find("dropped_events"))
        dropped += static_cast<std::uint64_t>(d->as_number());
    }
    const common::Json* events = trace.find("traceEvents");
    if (events == nullptr || !events->is_array()) continue;
    for (const common::Json& event : events->items()) {
      const common::Json* ph = event.find("ph");
      if (ph != nullptr && ph->is_string() && ph->as_string() == "M") {
        const std::string key = event.dump(0);
        if (std::find(seen_metadata.begin(), seen_metadata.end(), key) !=
            seen_metadata.end())
          continue;
        seen_metadata.push_back(key);
      }
      merged_events.push_back(event);
    }
  }
  common::Json root = common::Json::object();
  root.set("displayTimeUnit", "ms");
  common::Json other = common::Json::object();
  other.set("schema", std::string(kTraceSchema));
  other.set("dropped_events", dropped);
  other.set("merged_from", traces.size());
  root.set("otherData", std::move(other));
  root.set("traceEvents", std::move(merged_events));
  return root;
}

}  // namespace arcs::telemetry
