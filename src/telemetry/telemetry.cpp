#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/log.hpp"

namespace arcs::telemetry {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Innermost open ScopedSpan on this thread ({0,0} outside any span).
thread_local SpanContext tls_context;

struct LocalSlot {
  std::uint64_t epoch = ~0ull;
  void* buffer = nullptr;  ///< Tracer::ThreadBuffer*, valid for `epoch`
  std::uint32_t host_track = ~0u;
  std::uint64_t track_epoch = ~0ull;
};
thread_local LocalSlot tls_slot;

}  // namespace

std::string_view to_string(Category category) {
  switch (category) {
    case Category::Somp:
      return "somp";
    case Category::Apex:
      return "apex";
    case Category::Harmony:
      return "harmony";
    case Category::Exec:
      return "exec";
    case Category::Serve:
      return "serve";
    case Category::Sim:
      return "sim";
    case Category::Client:
      return "client";
    case Category::Fleet:
      return "fleet";
  }
  return "unknown";
}

void Event::set_name(std::string_view n) {
  const std::size_t len = std::min(n.size(), kMaxName);
  std::memcpy(name, n.data(), len);
  name[len] = '\0';
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(TracerOptions options) {
  std::lock_guard<analysis::Mutex> lock(buffers_mu_);
  ring_capacity_ = std::max<std::size_t>(options.ring_capacity, 16);
  id_prefix_ = (options.id_seed & 0xfffffu) << 32;
  clock_ = std::move(options.clock);
  clock_origin_ = clock_ ? 0.0 : steady_seconds();
  buffers_.clear();
  next_seq_.store(0, std::memory_order_relaxed);
  next_id_.store(0, std::memory_order_relaxed);
  next_host_track_.store(0, std::memory_order_relaxed);
  next_virtual_track_.store(0, std::memory_order_relaxed);
  warned_drop_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<analysis::Mutex> names_lock(names_mu_);
    track_names_.clear();
  }
  // Release: a thread that observes the epoch bump must also see the new
  // capacity/prefix/clock written above.
  epoch_.fetch_add(1, std::memory_order_release);
  mode_.fetch_or(kModeRing, std::memory_order_release);
}

void Tracer::disable() {
  mode_.fetch_and(~kModeRing, std::memory_order_release);
}

void Tracer::attach_sink(EventSink* sink) {
  std::lock_guard<analysis::Mutex> lock(buffers_mu_);
  sink_.store(sink, std::memory_order_release);
  if (sink != nullptr) {
    // Sink-only mode still needs a host clock: spans carry seconds since
    // the first attach unless enable() (re)anchors the origin.
    if (mode_.load(std::memory_order_relaxed) == 0 && !clock_)
      clock_origin_ = steady_seconds();
    mode_.fetch_or(kModeSink, std::memory_order_release);
  } else {
    mode_.fetch_and(~kModeSink, std::memory_order_release);
  }
}

void Tracer::reset() {
  disable();
  std::lock_guard<analysis::Mutex> lock(buffers_mu_);
  buffers_.clear();
  next_seq_.store(0, std::memory_order_relaxed);
  next_id_.store(0, std::memory_order_relaxed);
  next_host_track_.store(0, std::memory_order_relaxed);
  next_virtual_track_.store(0, std::memory_order_relaxed);
  warned_drop_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<analysis::Mutex> names_lock(names_mu_);
    track_names_.clear();
  }
  epoch_.fetch_add(1, std::memory_order_release);
}

double Tracer::now() const {
  if (clock_) return clock_();
  return steady_seconds() - clock_origin_;
}

std::uint64_t Tracer::next_id() {
  return id_prefix_ | (next_id_.fetch_add(1, std::memory_order_relaxed) + 1);
}

Tracer::ThreadBuffer* Tracer::local_buffer() {
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (tls_slot.epoch == epoch)
    return static_cast<ThreadBuffer*>(tls_slot.buffer);
  auto buffer = std::make_unique<ThreadBuffer>();
  {
    std::lock_guard<analysis::Mutex> lock(buffers_mu_);
    // An enable()/reset() racing with us would clear buffers_ after our
    // push; re-check the epoch under the lock so a stale buffer is never
    // cached past its lifetime.
    if (epoch_.load(std::memory_order_relaxed) != epoch) return nullptr;
    buffer->ring.resize(ring_capacity_);
    buffers_.push_back(std::move(buffer));
    tls_slot.buffer = buffers_.back().get();
  }
  tls_slot.epoch = epoch;
  return static_cast<ThreadBuffer*>(tls_slot.buffer);
}

void Tracer::emit(Event event) {
  const unsigned mode = mode_.load(std::memory_order_relaxed);
  if (mode == 0) return;
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  if ((mode & kModeSink) != 0) {
    if (EventSink* sink = sink_.load(std::memory_order_acquire))
      sink->record(event);
  }
  if ((mode & kModeRing) == 0) return;
  ThreadBuffer* buffer = local_buffer();
  if (buffer == nullptr) return;
  const std::size_t count = buffer->count.load(std::memory_order_relaxed);
  if (count >= buffer->ring.size()) {
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    if (!warned_drop_.exchange(true, std::memory_order_relaxed)) {
      common::log_warn()
          << "telemetry: trace ring full (capacity " << buffer->ring.size()
          << " events/thread), dropping newest events; "
          << "raise TracerOptions::ring_capacity to keep them";
    }
    return;
  }
  buffer->ring[count] = event;
  // Release pairs with drain()'s acquire load: the drainer sees the fully
  // written slot before it trusts the new count.
  buffer->count.store(count + 1, std::memory_order_release);
}

void Tracer::complete(Category category, TimeDomain domain,
                      std::string_view name, std::uint32_t track, double ts,
                      double dur, std::uint64_t id, std::uint64_t trace,
                      std::uint64_t parent, std::uint64_t arg0,
                      std::uint64_t arg1) {
  if (!enabled()) return;
  Event e;
  e.phase = Phase::Complete;
  e.category = category;
  e.domain = domain;
  e.set_name(name);
  e.track = track;
  e.ts = ts;
  e.dur = dur;
  e.id = id;
  e.trace = trace;
  e.parent = parent;
  e.arg0 = arg0;
  e.arg1 = arg1;
  emit(e);
}

void Tracer::counter(Category category, TimeDomain domain,
                     std::string_view name, std::uint32_t track, double ts,
                     double value) {
  if (!enabled()) return;
  Event e;
  e.phase = Phase::Counter;
  e.category = category;
  e.domain = domain;
  e.set_name(name);
  e.track = track;
  e.ts = ts;
  e.value = value;
  emit(e);
}

void Tracer::instant(Category category, TimeDomain domain,
                     std::string_view name, std::uint32_t track, double ts,
                     std::uint64_t arg0) {
  if (!enabled()) return;
  Event e;
  e.phase = Phase::Instant;
  e.category = category;
  e.domain = domain;
  e.set_name(name);
  e.track = track;
  e.ts = ts;
  e.arg0 = arg0;
  emit(e);
}

std::uint32_t Tracer::host_track() {
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (tls_slot.track_epoch != epoch) {
    tls_slot.host_track =
        next_host_track_.fetch_add(1, std::memory_order_relaxed);
    tls_slot.track_epoch = epoch;
  }
  return tls_slot.host_track;
}

std::uint32_t Tracer::allocate_virtual_tracks(std::uint32_t count) {
  return next_virtual_track_.fetch_add(count, std::memory_order_relaxed);
}

void Tracer::name_track(TimeDomain domain, std::uint32_t track,
                        std::string_view name) {
  if (!enabled()) return;
  std::lock_guard<analysis::Mutex> lock(names_mu_);
  track_names_.emplace(std::pair<int, std::uint32_t>{static_cast<int>(domain),
                                                     track},
                       std::string(name));
}

void Tracer::name_host_thread(std::string_view name) {
  if (!enabled()) return;
  name_track(TimeDomain::Host, host_track(), name);
}

std::vector<Event> Tracer::drain() {
  std::vector<Event> events;
  std::lock_guard<analysis::Mutex> lock(buffers_mu_);
  for (auto& buffer : buffers_) {
    const std::size_t count = buffer->count.load(std::memory_order_acquire);
    events.insert(events.end(), buffer->ring.begin(),
                  buffer->ring.begin() + static_cast<std::ptrdiff_t>(count));
    buffer->count.store(0, std::memory_order_relaxed);
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return events;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard<analysis::Mutex> lock(buffers_mu_);
  for (const auto& buffer : buffers_)
    total += buffer->dropped.load(std::memory_order_relaxed);
  return total;
}

std::map<std::pair<int, std::uint32_t>, std::string> Tracer::track_names()
    const {
  std::lock_guard<analysis::Mutex> lock(names_mu_);
  return track_names_;
}

SpanContext current_context() { return tls_context; }

ScopedSpan::ScopedSpan(Category category, std::string_view name,
                       SpanContext parent, std::uint64_t arg0,
                       std::uint64_t arg1) {
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  active_ = true;
  category_ = category;
  const std::size_t len = std::min(name.size(), kMaxName);
  std::memcpy(name_, name.data(), len);
  name_[len] = '\0';
  id_ = tracer.next_id();
  if (!parent.valid()) parent = tls_context;
  if (parent.valid()) {
    trace_ = parent.trace_id;
    parent_ = parent.parent_id;
  } else {
    trace_ = id_;  // root span: the span id names the whole trace
    parent_ = 0;
  }
  arg0_ = arg0;
  arg1_ = arg1;
  track_ = tracer.host_track();
  t0_ = tracer.now();
  saved_ = tls_context;
  tls_context = SpanContext{trace_, id_};
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  tls_context = saved_;
  Tracer& tracer = Tracer::instance();
  // Even if tracing was disabled mid-span, record the close so the trace
  // stays balanced; emit() itself re-checks enabled and may drop it.
  const double t1 = tracer.now();
  tracer.complete(category_, TimeDomain::Host, name_, track_, t0_, t1 - t0_,
                  id_, trace_, parent_, arg0_, arg1_);
}

}  // namespace arcs::telemetry
