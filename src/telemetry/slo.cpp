#include "telemetry/slo.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "telemetry/telemetry.hpp"

namespace arcs::telemetry {

namespace {

constexpr std::size_t kHistoryCapacity = 64;

/// Maps mean absolute deviation to a normal-distribution sigma.
constexpr double kMadToSigma = 1.4826;

/// Relative sigma floor: a perfectly steady series collapses the MAD
/// to zero, which would make any deviation — however large — score an
/// infinite z and any threshold unreachable via `sigma > 0` guards.
/// Flooring sigma at a fraction of the center keeps genuine bursts
/// detectable on flat baselines without firing on proportional noise.
constexpr double kSigmaFloorFraction = 0.05;

std::string format_value(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace

common::Json Alert::to_json() const {
  common::Json json = common::Json::object();
  json.set("name", name);
  json.set("node", node);
  json.set("severity", severity);
  json.set("message", message);
  json.set("since_s", since_s);
  json.set("value", value);
  json.set("target", target);
  json.set("burn_rate", burn_rate);
  json.set("active", active);
  return json;
}

SloEngine::SloEngine(SloOptions options) : options_(options) {
  if (options_.fire_after < 1) options_.fire_after = 1;
  if (options_.clear_after < 1) options_.clear_after = 1;
}

SloEngine::Rule& SloEngine::rule_for(std::string_view name,
                                     std::string_view node) {
  for (Rule& rule : rules_)
    if (rule.name == name && rule.node == node) return rule;
  Rule rule;
  rule.name = std::string(name);
  rule.node = std::string(node);
  rule.alert.name = rule.name;
  rule.alert.node = rule.node;
  rules_.push_back(std::move(rule));
  return rules_.back();
}

SloTransition SloEngine::evaluate(std::string_view name,
                                 std::string_view node, double t,
                                 double value, double target, SloKind kind,
                                 std::string_view severity) {
  Rule& rule = rule_for(name, node);
  const bool breached = kind == SloKind::UpperBound ? value > target
                                                    : value < target;
  // Burn rate: how fast the error budget is being consumed, normalized
  // so 1.0 means "exactly at target". For a floor-type SLO the budget is
  // the allowed shortfall below 1.0 (hit ratio style).
  double burn = 0;
  if (kind == SloKind::UpperBound) {
    burn = target > 0 ? value / target : (value > 0 ? 2.0 : 0.0);
  } else {
    const double budget = 1.0 - target;
    burn = budget > 0 ? (1.0 - value) / budget : (breached ? 2.0 : 0.0);
  }

  Alert& alert = rule.alert;
  alert.severity = std::string(severity);
  alert.value = value;
  alert.target = target;
  alert.burn_rate = burn;

  SloTransition transition = SloTransition::None;
  if (breached) {
    rule.ok_streak = 0;
    ++rule.breach_streak;
    if (!alert.active && rule.breach_streak >= options_.fire_after) {
      alert.active = true;
      alert.since_s = t;
      alert.message = alert.name + (alert.node.empty() ? "" : "@" + alert.node) +
                      ": " + format_value(value) +
                      (kind == SloKind::UpperBound ? " > " : " < ") +
                      format_value(target);
      transition = SloTransition::Fired;
      ++fired_total_;
    }
  } else {
    rule.breach_streak = 0;
    ++rule.ok_streak;
    if (alert.active && rule.ok_streak >= options_.clear_after) {
      alert.active = false;
      transition = SloTransition::Cleared;
    }
  }

  if (transition != SloTransition::None) {
    if (history_.size() >= kHistoryCapacity)
      history_.erase(history_.begin());
    history_.push_back(alert);
    Tracer& tracer = Tracer::instance();
    if (tracer.enabled()) {
      const std::string event_name =
          std::string(transition == SloTransition::Fired ? "alert/fired/"
                                                         : "alert/cleared/") +
          alert.name;
      tracer.instant(Category::Fleet, TimeDomain::Host, event_name,
                     tracer.host_track(), tracer.now());
    }
  }
  return transition;
}

std::vector<Alert> SloEngine::active() const {
  std::vector<Alert> out;
  for (const Rule& rule : rules_)
    if (rule.alert.active) out.push_back(rule.alert);
  return out;
}

bool AnomalyDetector::observe(double v) {
  if (samples_ == 0) {
    center_ = v;
    deviation_ = 0;
    samples_ = 1;
    return false;
  }
  const double sigma =
      std::max(kMadToSigma * deviation_,
               kSigmaFloorFraction * (std::abs(center_) + 1.0));
  const bool anomalous =
      samples_ >= min_samples_ && std::abs(v - center_) > z_ * sigma;
  // Anomalous samples still update the estimates (the detector tracks
  // the new regime instead of alerting forever), just through the same
  // smoothing every sample gets.
  const double error = std::abs(v - center_);
  center_ += alpha_ * (v - center_);
  deviation_ += alpha_ * (error - deviation_);
  ++samples_;
  return anomalous;
}

}  // namespace arcs::telemetry
