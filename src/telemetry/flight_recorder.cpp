#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>

#include "common/log.hpp"
#include "telemetry/chrome_trace.hpp"

namespace arcs::telemetry {

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(options) {
  options_.capacity = std::max<std::size_t>(options_.capacity, 16);
  slots_ = std::make_unique<Slot[]>(options_.capacity);
}

FlightRecorder& FlightRecorder::instance() {
  // Leaked on purpose: the crash handler may dump during static
  // destruction, after a function-local static would have been torn down.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::attach(Tracer& tracer) {
  tracer.attach_sink(this);
  attached_.store(true, std::memory_order_relaxed);
}

void FlightRecorder::detach(Tracer& tracer) {
  tracer.attach_sink(nullptr);
  attached_.store(false, std::memory_order_relaxed);
}

void FlightRecorder::record(const Event& event) {
  // Claim a ticket, then seqlock-commit the slot: odd = write in
  // progress, even = ticket*2+2 committed. A reader (or a colliding
  // writer a full ring-lap away — only possible when 4096 emissions
  // happen mid-write) sees a mismatched commit word and skips the slot.
  const std::uint64_t ticket =
      head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % options_.capacity];
  slot.commit.store(ticket * 2 + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.event = event;
  slot.commit.store(ticket * 2 + 2, std::memory_order_release);
}

std::vector<Event> FlightRecorder::events() const {
  std::vector<Event> out;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t capacity = options_.capacity;
  const std::uint64_t start = head > capacity ? head - capacity : 0;
  out.reserve(static_cast<std::size_t>(head - start));
  for (std::uint64_t ticket = start; ticket < head; ++ticket) {
    const Slot& slot = slots_[ticket % capacity];
    const std::uint64_t c1 = slot.commit.load(std::memory_order_acquire);
    if (c1 != ticket * 2 + 2) {
      // Mid-write, or already overwritten by a concurrent lap.
      torn_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Event copy = slot.event;
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t c2 = slot.commit.load(std::memory_order_relaxed);
    if (c2 != c1) {
      torn_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    out.push_back(copy);
  }
  return out;
}

std::vector<Exemplar> FlightRecorder::exemplars() const {
  std::lock_guard<analysis::Mutex> lock(mu_);
  return exemplars_;
}

std::uint64_t FlightRecorder::overwritten() const {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t lost =
      head > options_.capacity ? head - options_.capacity : 0;
  return lost + torn_.load(std::memory_order_relaxed);
}

void FlightRecorder::note_exemplar(std::string_view metric, double value,
                                   double bucket_le, SpanContext ctx) {
  std::lock_guard<analysis::Mutex> lock(mu_);
  // Top-K slowest per metric: find this metric's current entries, and
  // either grow to K or displace its smallest retained value.
  std::size_t metric_count = 0;
  std::size_t smallest = exemplars_.size();
  for (std::size_t i = 0; i < exemplars_.size(); ++i) {
    if (exemplars_[i].metric != metric) continue;
    ++metric_count;
    if (smallest == exemplars_.size() ||
        exemplars_[i].value < exemplars_[smallest].value)
      smallest = i;
  }
  Exemplar exemplar;
  exemplar.metric = std::string(metric);
  exemplar.value = value;
  exemplar.bucket_le = bucket_le;
  exemplar.trace = ctx.trace_id;
  exemplar.span = ctx.parent_id;
  exemplar.ts = Tracer::instance().now();
  if (metric_count < options_.exemplars_per_metric) {
    exemplars_.push_back(std::move(exemplar));
    return;
  }
  if (smallest < exemplars_.size() &&
      value > exemplars_[smallest].value)
    exemplars_[smallest] = std::move(exemplar);
}

common::Json FlightRecorder::dump(Tracer& tracer) const {
  common::Json doc =
      chrome_trace_json(events(), tracer.track_names(), overwritten());
  common::Json exemplar_rows = common::Json::array();
  for (const Exemplar& exemplar : exemplars()) {
    common::Json row = common::Json::object();
    row.set("metric", exemplar.metric);
    row.set("value", exemplar.value);
    row.set("bucket_le", exemplar.bucket_le);
    row.set("trace", exemplar.trace);
    row.set("span", exemplar.span);
    row.set("ts", exemplar.ts);
    exemplar_rows.push_back(std::move(row));
  }
  const common::Json* other = doc.find("otherData");
  common::Json other_copy =
      other != nullptr ? *other : common::Json::object();
  other_copy.set("recorder", "flight");
  other_copy.set("exemplars", std::move(exemplar_rows));
  doc.set("otherData", std::move(other_copy));
  return doc;
}

bool FlightRecorder::dump_to_file(const std::string& path, bool atomic,
                                  Tracer& tracer) const {
  const std::string text = dump(tracer).dump(1) + "\n";
  const std::string target = atomic ? path + ".tmp" : path;
  {
    std::ofstream out(target, std::ios::trunc);
    if (!out) {
      common::log_error() << "flight recorder: cannot open " << target;
      return false;
    }
    out << text;
    if (!out) {
      common::log_error() << "flight recorder: short write to " << target;
      return false;
    }
  }
  if (atomic && std::rename(target.c_str(), path.c_str()) != 0) {
    common::log_error() << "flight recorder: rename to " << path
                        << " failed";
    return false;
  }
  return true;
}

void FlightRecorder::reset() {
  std::lock_guard<analysis::Mutex> lock(mu_);
  head_.store(0, std::memory_order_relaxed);
  torn_.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < options_.capacity; ++i)
    slots_[i].commit.store(0, std::memory_order_relaxed);
  exemplars_.clear();
}

}  // namespace arcs::telemetry
