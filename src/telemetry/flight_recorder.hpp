// Always-on crash flight recorder: the last N telemetry events, dumpable
// as a valid arcs-trace/v1 document at any moment.
//
// Tracing (Tracer::enable) retains *everything* until a drain — too much
// state to leave on in production. The flight recorder is the
// complement: a fixed preallocated ring of the most recent events,
// overwriting oldest-first, fed through the Tracer's EventSink tee so
// spans form even when ring tracing is off. arcsd attaches it at
// startup; a crash handler (SIGSEGV/SIGABRT), the graceful-exit path, or
// the `dump` op then materializes the ring into a Chrome-trace document
// whose otherData carries slow-request *exemplars*: per-histogram top-K
// slowest observations with their trace/span ids, so a p99 spike in the
// scrape links to an actual trace.
//
// Concurrency: record() is lock-free (slot claim by fetch_add; per-slot
// seqlock-style commit word so dump() never reads a half-written event).
// Exemplars and dump() serialize on one mutex (rank kTelemetryRecorder).
// dump() from a signal handler is best-effort: it takes the exemplar
// mutex and allocates, which is not async-signal-safe in the strict
// sense — standard crash-recorder practice, acceptable for a
// last-breath artifact (the periodic dump file is the reliable copy).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/sync.hpp"
#include "common/json.hpp"
#include "telemetry/telemetry.hpp"

namespace arcs::telemetry {

struct FlightRecorderOptions {
  /// Events retained (ring slots, preallocated). Sized so a full ring's
  /// compact-JSON dump stays comfortably inside the arcs-serve/v1 frame
  /// limit when served through the `dump` op.
  std::size_t capacity = 2048;
  /// Slowest observations kept per histogram name.
  std::size_t exemplars_per_metric = 4;
};

/// One retained slow-request exemplar: the observed value with the trace
/// ids that let a human open the corresponding spans.
struct Exemplar {
  std::string metric;       ///< histogram name ("serve/miss_seconds")
  double value = 0;         ///< observed value (seconds)
  double bucket_le = 0;     ///< upper bound of the bucket it landed in
  std::uint64_t trace = 0;  ///< trace id (0 = none attached)
  std::uint64_t span = 0;   ///< span id
  double ts = 0;            ///< host-clock seconds when observed
};

class FlightRecorder : public EventSink {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  /// Process-wide instance (what arcsd attaches).
  static FlightRecorder& instance();

  /// Attaches to / detaches from the process Tracer's sink tee.
  void attach(Tracer& tracer = Tracer::instance());
  void detach(Tracer& tracer = Tracer::instance());
  bool attached() const {
    return attached_.load(std::memory_order_relaxed);
  }

  // EventSink: called from every emitting thread; lock-free.
  void record(const Event& event) override;

  /// Records a slow observation candidate for `metric`. Keeps the K
  /// slowest per metric name. Callers are expected to be off any hot
  /// path (serve only notes sampled/rare observations).
  void note_exemplar(std::string_view metric, double value,
                     double bucket_le, SpanContext ctx);

  /// The retained events, oldest first (seqlock read; torn slots are
  /// skipped and counted as overwritten).
  std::vector<Event> events() const;

  std::vector<Exemplar> exemplars() const;

  /// Events pushed out of the ring (or torn mid-read) since reset.
  std::uint64_t overwritten() const;

  /// Builds the full arcs-trace/v1 document: ring events + the Tracer's
  /// track names, with exemplars under otherData.exemplars and
  /// overwritten events reported as dropped_events.
  common::Json dump(Tracer& tracer = Tracer::instance()) const;

  /// dump() serialized to `path` (atomic tmp+rename when `atomic`;
  /// direct write otherwise — the signal-handler path cannot rename
  /// safely if the tmp name needs allocation, so it writes direct).
  bool dump_to_file(const std::string& path, bool atomic = true,
                    Tracer& tracer = Tracer::instance()) const;

  /// Clears retained events, exemplars, and counters (tests).
  void reset();

 private:
  struct Slot {
    /// 0 = empty, odd = write in progress, even = committed ticket*2+2.
    std::atomic<std::uint64_t> commit{0};
    Event event;
  };

  FlightRecorderOptions options_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};  ///< next ticket (claims slot i%N)
  mutable std::atomic<std::uint64_t> torn_{0};
  std::atomic<bool> attached_{false};

  mutable analysis::Mutex mu_{"telemetry/recorder",
                              analysis::sync::rank::kTelemetryRecorder};
  std::vector<Exemplar> exemplars_;  ///< guarded by mu_
};

}  // namespace arcs::telemetry
