#include "telemetry/timeseries.hpp"

#include <algorithm>
#include <cmath>

namespace arcs::telemetry {

namespace {

std::int64_t bucket_index(double t, double width) {
  return static_cast<std::int64_t>(std::floor(t / width));
}

}  // namespace

Series::Series(const TimeSeriesOptions& options)
    : options_(options),
      raw_(options.raw_capacity),
      mid_(options.mid_capacity),
      coarse_(options.coarse_capacity) {}

void Series::record(double t, double v) {
  if (have_last_t_ && t < last_t_) t = last_t_;
  last_t_ = t;
  have_last_t_ = true;
  raw_.push(SeriesPoint{t, v, v, v, v, 1});
  fold(open_mid_, mid_, options_.mid_width_s, t, v);
  fold(open_coarse_, coarse_, options_.coarse_width_s, t, v);
}

void Series::record_cumulative(double t, double cumulative) {
  if (!have_cumulative_) {
    have_cumulative_ = true;
    prev_cumulative_ = cumulative;
    return;
  }
  const double delta =
      cumulative >= prev_cumulative_ ? cumulative - prev_cumulative_
                                     : cumulative;
  prev_cumulative_ = cumulative;
  record(t, delta);
}

void Series::fold(Bucket& bucket, detail::Ring<SeriesPoint>& ring,
                  double width, double t, double v) {
  const std::int64_t index = bucket_index(t, width);
  if (bucket.open && bucket.index != index) {
    ring.push(bucket.point);
    bucket.open = false;
  }
  if (!bucket.open) {
    bucket.open = true;
    bucket.index = index;
    bucket.point =
        SeriesPoint{static_cast<double>(index) * width, v, v, 0, v, 0};
  }
  SeriesPoint& p = bucket.point;
  p.min = std::min(p.min, v);
  p.max = std::max(p.max, v);
  p.sum += v;
  p.last = v;
  p.count += 1;
}

std::vector<SeriesPoint> Series::points(Tier tier) const {
  std::vector<SeriesPoint> out;
  const auto collect = [&out](const detail::Ring<SeriesPoint>& ring,
                              const Bucket& open) {
    out.reserve(ring.size() + 1);
    for (std::size_t i = 0; i < ring.size(); ++i) out.push_back(ring.at(i));
    if (open.open) out.push_back(open.point);
  };
  switch (tier) {
    case Tier::Raw:
      out.reserve(raw_.size());
      for (std::size_t i = 0; i < raw_.size(); ++i) out.push_back(raw_.at(i));
      break;
    case Tier::Mid:
      collect(mid_, open_mid_);
      break;
    case Tier::Coarse:
      collect(coarse_, open_coarse_);
      break;
  }
  return out;
}

SeriesPoint Series::window(double from_t, double to_t) const {
  SeriesPoint agg;
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    const SeriesPoint& p = raw_.at(i);
    if (p.t < from_t || p.t > to_t) continue;
    if (agg.count == 0) {
      agg = p;
      continue;
    }
    agg.min = std::min(agg.min, p.min);
    agg.max = std::max(agg.max, p.max);
    agg.sum += p.sum;
    agg.last = p.last;
    agg.t = p.t;
    agg.count += p.count;
  }
  return agg;
}

HistogramSeries::HistogramSeries(const TimeSeriesOptions& options)
    : options_(options),
      raw_(options.raw_capacity),
      mid_(options.mid_capacity),
      coarse_(options.coarse_capacity) {}

void HistogramSeries::record(double t, const HistogramSnapshot& cumulative) {
  if (!have_cumulative_) {
    have_cumulative_ = true;
    prev_cumulative_ = cumulative;
    return;
  }
  const HistogramSnapshot delta = cumulative.count >= prev_cumulative_.count
                                      ? cumulative.delta_since(prev_cumulative_)
                                      : cumulative;
  prev_cumulative_ = cumulative;
  if (have_last_t_ && t < last_t_) t = last_t_;
  last_t_ = t;
  have_last_t_ = true;
  raw_.push(Point{t, delta});
  fold(open_mid_, mid_, options_.mid_width_s, t, delta);
  fold(open_coarse_, coarse_, options_.coarse_width_s, t, delta);
}

void HistogramSeries::fold(Bucket& bucket, detail::Ring<Point>& ring,
                           double width, double t,
                           const HistogramSnapshot& delta) {
  const std::int64_t index = bucket_index(t, width);
  if (bucket.open && bucket.index != index) {
    ring.push(bucket.point);
    bucket.open = false;
  }
  if (!bucket.open) {
    bucket.open = true;
    bucket.index = index;
    bucket.point = Point{static_cast<double>(index) * width, {}};
  }
  bucket.point.delta.merge(delta);
}

std::vector<HistogramSeries::Point> HistogramSeries::points(Tier tier) const {
  std::vector<Point> out;
  const auto collect = [&out](const detail::Ring<Point>& ring,
                              const Bucket& open) {
    out.reserve(ring.size() + 1);
    for (std::size_t i = 0; i < ring.size(); ++i) out.push_back(ring.at(i));
    if (open.open) out.push_back(open.point);
  };
  switch (tier) {
    case Tier::Raw:
      out.reserve(raw_.size());
      for (std::size_t i = 0; i < raw_.size(); ++i) out.push_back(raw_.at(i));
      break;
    case Tier::Mid:
      collect(mid_, open_mid_);
      break;
    case Tier::Coarse:
      collect(coarse_, open_coarse_);
      break;
  }
  return out;
}

HistogramSnapshot HistogramSeries::window(double from_t, double to_t) const {
  HistogramSnapshot merged;
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    const Point& p = raw_.at(i);
    if (p.t < from_t || p.t > to_t) continue;
    merged.merge(p.delta);
  }
  return merged;
}

TimeSeriesStore::TimeSeriesStore(TimeSeriesOptions options)
    : options_(options) {}

void TimeSeriesStore::record_gauge(std::string_view name, double t,
                                   double v) {
  std::lock_guard<analysis::Mutex> lock(mu_);
  auto it = scalars_.find(name);
  if (it == scalars_.end())
    it = scalars_
             .emplace(std::string(name), std::make_unique<Series>(options_))
             .first;
  it->second->record(t, v);
}

void TimeSeriesStore::record_counter(std::string_view name, double t,
                                     double cumulative) {
  std::lock_guard<analysis::Mutex> lock(mu_);
  auto it = scalars_.find(name);
  if (it == scalars_.end())
    it = scalars_
             .emplace(std::string(name), std::make_unique<Series>(options_))
             .first;
  it->second->record_cumulative(t, cumulative);
}

void TimeSeriesStore::record_histogram(std::string_view name, double t,
                                       const HistogramSnapshot& cumulative) {
  std::lock_guard<analysis::Mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<HistogramSeries>(options_))
             .first;
  it->second->record(t, cumulative);
}

std::vector<SeriesPoint> TimeSeriesStore::points(std::string_view name,
                                                 Tier tier) const {
  std::lock_guard<analysis::Mutex> lock(mu_);
  const auto it = scalars_.find(name);
  if (it == scalars_.end()) return {};
  return it->second->points(tier);
}

SeriesPoint TimeSeriesStore::window(std::string_view name, double from_t,
                                    double to_t) const {
  std::lock_guard<analysis::Mutex> lock(mu_);
  const auto it = scalars_.find(name);
  if (it == scalars_.end()) return {};
  return it->second->window(from_t, to_t);
}

HistogramSnapshot TimeSeriesStore::histogram_window(std::string_view name,
                                                    double from_t,
                                                    double to_t) const {
  std::lock_guard<analysis::Mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) return {};
  return it->second->window(from_t, to_t);
}

std::vector<std::string> TimeSeriesStore::scalar_names() const {
  std::lock_guard<analysis::Mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(scalars_.size());
  for (const auto& [name, series] : scalars_) names.push_back(name);
  return names;
}

std::vector<std::string> TimeSeriesStore::histogram_names() const {
  std::lock_guard<analysis::Mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, series] : histograms_) names.push_back(name);
  return names;
}

const char* to_string(Tier tier) {
  switch (tier) {
    case Tier::Raw:
      return "raw";
    case Tier::Mid:
      return "mid";
    case Tier::Coarse:
      return "coarse";
  }
  return "?";
}

}  // namespace arcs::telemetry
