#include "telemetry/observer.hpp"

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "sim/machine.hpp"
#include "somp/runtime.hpp"
#include "telemetry/telemetry.hpp"

namespace arcs::telemetry {

namespace {

/// Virtual-time lanes reserved per attached runtime: lane 0 is the
/// region track, lanes 1.. are per-thread loop/barrier tracks. Disjoint
/// ranges keep concurrent exec-pool runtimes from sharing a track.
constexpr std::uint32_t kLanesPerRuntime = 64;

/// Per-runtime observer state. somp delivers all events synchronously on
/// the (single) thread simulating this runtime, so no locking.
struct ObserverState {
  explicit ObserverState(sim::Machine& m) : machine(&m) {}

  sim::Machine* machine;
  std::uint32_t lane_base = 0;
  bool lanes_named = false;

  // Current region (regions are sequential in virtual time).
  ompt::ParallelId parallel_id = 0;
  std::uint64_t region_span = 0;
  double region_t0 = 0;
  std::string region_name;

  struct ThreadState {
    double loop_t0 = -1;
    double barrier_t0 = -1;
    bool named = false;
  };
  std::vector<ThreadState> threads;

  ThreadState& thread(int thread_num) {
    const auto index = static_cast<std::size_t>(thread_num < 0 ? 0
                                                               : thread_num);
    if (index >= threads.size()) threads.resize(index + 1);
    return threads[index];
  }

  std::uint32_t thread_lane(int thread_num) {
    return lane_base + 1 +
           static_cast<std::uint32_t>(thread_num < 0 ? 0 : thread_num);
  }
};

}  // namespace

void attach_tracing(somp::Runtime& runtime) {
  auto state = std::make_shared<ObserverState>(runtime.machine());

  ompt::ToolCallbacks callbacks;

  callbacks.parallel_begin = [state](const ompt::ParallelBeginRecord& r) {
    Tracer& tracer = Tracer::instance();
    if (!tracer.enabled()) return;
    // Lanes are claimed on first traced region, not at attach time, so
    // runtimes that never run while tracing is on consume none.
    if (!state->lanes_named) {
      state->lane_base = tracer.allocate_virtual_tracks(kLanesPerRuntime);
      tracer.name_track(TimeDomain::Virtual, state->lane_base,
                        "somp regions");
      state->lanes_named = true;
    }
    state->parallel_id = r.parallel_id;
    state->region_span = tracer.next_id();
    state->region_t0 = r.time;
    state->region_name = "region:" + r.region.name;
  };

  callbacks.parallel_end = [state](const ompt::ParallelEndRecord& r) {
    Tracer& tracer = Tracer::instance();
    if (!tracer.enabled() || r.parallel_id != state->parallel_id) return;
    tracer.complete(Category::Somp, TimeDomain::Virtual, state->region_name,
                    state->lane_base, state->region_t0,
                    r.time - state->region_t0, state->region_span,
                    state->region_span, 0, r.parallel_id,
                    static_cast<std::uint64_t>(r.team_size));
    // RAPL samples at region exit: the power the last advance() segment
    // drew and the cumulative package energy — the power-over-time track.
    tracer.counter(Category::Sim, TimeDomain::Virtual, "power_w",
                   state->lane_base, r.time, state->machine->last_power());
    tracer.counter(Category::Sim, TimeDomain::Virtual, "energy_j",
                   state->lane_base, r.time, state->machine->energy());
    state->parallel_id = 0;
  };

  callbacks.work_loop = [state](const ompt::WorkLoopRecord& r) {
    Tracer& tracer = Tracer::instance();
    if (!tracer.enabled() || r.parallel_id != state->parallel_id) return;
    ObserverState::ThreadState& t = state->thread(r.thread_num);
    if (r.endpoint == ompt::Endpoint::Begin) {
      t.loop_t0 = r.time;
      if (!t.named) {
        tracer.name_track(TimeDomain::Virtual,
                          state->thread_lane(r.thread_num),
                          "somp thread " + std::to_string(r.thread_num));
        t.named = true;
      }
      return;
    }
    if (t.loop_t0 < 0) return;
    tracer.complete(Category::Somp, TimeDomain::Virtual, "loop",
                    state->thread_lane(r.thread_num), t.loop_t0,
                    r.time - t.loop_t0, 0, state->region_span,
                    state->region_span, r.parallel_id,
                    static_cast<std::uint64_t>(r.thread_num < 0
                                                   ? 0
                                                   : r.thread_num));
    t.loop_t0 = -1;
  };

  callbacks.sync_region = [state](const ompt::SyncRegionRecord& r) {
    Tracer& tracer = Tracer::instance();
    if (!tracer.enabled() || r.parallel_id != state->parallel_id) return;
    ObserverState::ThreadState& t = state->thread(r.thread_num);
    if (r.endpoint == ompt::Endpoint::Begin) {
      t.barrier_t0 = r.time;
      return;
    }
    if (t.barrier_t0 < 0) return;
    tracer.complete(Category::Somp, TimeDomain::Virtual, "barrier",
                    state->thread_lane(r.thread_num), t.barrier_t0,
                    r.time - t.barrier_t0, 0, state->region_span,
                    state->region_span, r.parallel_id,
                    static_cast<std::uint64_t>(r.thread_num < 0
                                                   ? 0
                                                   : r.thread_num));
    t.barrier_t0 = -1;
  };

  runtime.tools().register_tool(std::move(callbacks),
                                ompt::ToolKind::Observer);
}

}  // namespace arcs::telemetry
